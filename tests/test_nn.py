"""Tests for the repro.nn NumPy neural-network framework (the DQN substrate)."""

import numpy as np
import pytest

from repro.nn.activations import Identity, LeakyReLU, ReLU, Sigmoid, Tanh, get_activation
from repro.nn.initializers import (
    get_initializer,
    he_normal,
    he_uniform,
    uniform,
    xavier_normal,
    xavier_uniform,
    zeros,
)
from repro.nn.layers import Dense
from repro.nn.losses import HuberLoss, MeanSquaredError, get_loss
from repro.nn.network import MLP, Sequential
from repro.nn.optimizers import SGD, Adam, get_optimizer
from repro.utils.exceptions import ShapeError


class TestActivations:
    @pytest.mark.parametrize("name,cls", [("relu", ReLU), ("tanh", Tanh),
                                          ("sigmoid", Sigmoid), ("identity", Identity)])
    def test_lookup(self, name, cls):
        assert isinstance(get_activation(name), cls)

    def test_lookup_instance_passthrough(self):
        act = ReLU()
        assert get_activation(act) is act

    def test_unknown_activation(self):
        with pytest.raises(ValueError):
            get_activation("swish")

    def test_relu_forward(self):
        x = np.array([-2.0, 0.0, 3.0])
        np.testing.assert_array_equal(ReLU()(x), [0.0, 0.0, 3.0])

    @pytest.mark.parametrize("activation", [ReLU(), Tanh(), Sigmoid(), LeakyReLU(0.1)])
    def test_derivative_matches_finite_difference(self, activation, rng):
        x = rng.uniform(-2, 2, size=50) + 0.01   # avoid the ReLU kink exactly
        eps = 1e-6
        numeric = (activation.forward(x + eps) - activation.forward(x - eps)) / (2 * eps)
        np.testing.assert_allclose(activation.derivative(x), numeric, atol=1e-5)

    def test_sigmoid_stable_for_large_inputs(self):
        out = Sigmoid()(np.array([-1000.0, 1000.0]))
        assert np.all(np.isfinite(out))
        np.testing.assert_allclose(out, [0.0, 1.0], atol=1e-12)

    def test_lipschitz_constants(self):
        assert ReLU().lipschitz_constant == 1.0
        assert Tanh().lipschitz_constant == 1.0
        assert Sigmoid().lipschitz_constant == 0.25


class TestInitializers:
    def test_uniform_range(self, rng):
        w = uniform((100, 50), rng)
        assert w.min() >= 0.0 and w.max() <= 1.0

    def test_uniform_invalid_range(self, rng):
        with pytest.raises(ValueError):
            uniform((2, 2), rng, low=1.0, high=0.0)

    def test_zeros(self):
        np.testing.assert_array_equal(zeros((3, 4)), np.zeros((3, 4)))

    @pytest.mark.parametrize("init", [xavier_uniform, xavier_normal, he_uniform, he_normal])
    def test_variance_scales_with_fan_in(self, init, rng):
        small = init((10, 10), rng)
        large = init((1000, 10), rng)
        assert large.std() < small.std()

    def test_get_initializer_unknown(self):
        with pytest.raises(ValueError):
            get_initializer("orthogonal")


class TestLosses:
    def test_mse_value_and_gradient(self):
        loss = MeanSquaredError()
        pred = np.array([[1.0, 2.0]])
        target = np.array([[0.0, 0.0]])
        value, grad = loss(pred, target)
        assert value == pytest.approx(0.5 * (1 + 4) / 2)
        np.testing.assert_allclose(grad, (pred - target) / 2)

    def test_huber_quadratic_region(self):
        loss = HuberLoss(delta=1.0)
        pred, target = np.array([[0.5]]), np.array([[0.0]])
        value, grad = loss(pred, target)
        assert value == pytest.approx(0.125)
        assert grad[0, 0] == pytest.approx(0.5)

    def test_huber_linear_region(self):
        loss = HuberLoss(delta=1.0)
        pred, target = np.array([[3.0]]), np.array([[0.0]])
        value, grad = loss(pred, target)
        assert value == pytest.approx(2.5)      # |3| - 0.5
        assert grad[0, 0] == pytest.approx(1.0)  # clipped gradient

    def test_huber_gradient_matches_finite_difference(self, rng):
        loss = HuberLoss()
        pred = rng.normal(size=(4, 3))
        target = rng.normal(size=(4, 3))
        _, grad = loss(pred, target)
        eps = 1e-6
        for i in range(4):
            for j in range(3):
                bumped = pred.copy()
                bumped[i, j] += eps
                numeric = (loss.forward(bumped, target) - loss.forward(pred, target)) / eps
                assert grad[i, j] == pytest.approx(numeric, abs=1e-4)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            MeanSquaredError()(np.zeros((2, 2)), np.zeros((3, 2)))

    def test_invalid_delta(self):
        with pytest.raises(ValueError):
            HuberLoss(delta=0.0)

    def test_get_loss(self):
        assert isinstance(get_loss("huber"), HuberLoss)
        with pytest.raises(ValueError):
            get_loss("hinge")


class TestDense:
    def test_forward_shape(self, rng):
        layer = Dense(4, 8, activation="relu", rng=rng)
        out = layer.forward(rng.normal(size=(5, 4)))
        assert out.shape == (5, 8)

    def test_forward_promotes_vector(self, rng):
        layer = Dense(4, 2, rng=rng)
        assert layer.forward(np.zeros(4)).shape == (1, 2)

    def test_wrong_input_size(self, rng):
        layer = Dense(4, 2, rng=rng)
        with pytest.raises(ShapeError):
            layer.forward(np.zeros((3, 5)))

    def test_backward_before_forward(self, rng):
        layer = Dense(3, 2, rng=rng)
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 2)))

    def test_gradient_check(self, rng):
        """Backprop gradients must match finite differences."""
        layer = Dense(3, 2, activation="tanh", rng=rng)
        x = rng.normal(size=(4, 3))
        target = rng.normal(size=(4, 2))

        def loss_value():
            out = layer.forward(x, training=True)
            return 0.5 * float(np.sum((out - target) ** 2))

        out = layer.forward(x, training=True)
        layer.backward(out - target)
        analytic = layer.gradients["weights"].copy()
        eps = 1e-6
        for i in range(3):
            for j in range(2):
                layer.weights[i, j] += eps
                plus = loss_value()
                layer.weights[i, j] -= 2 * eps
                minus = loss_value()
                layer.weights[i, j] += eps
                numeric = (plus - minus) / (2 * eps)
                assert analytic[i, j] == pytest.approx(numeric, rel=1e-4, abs=1e-6)

    def test_parameter_count(self, rng):
        layer = Dense(4, 8, rng=rng)
        assert layer.n_parameters == 4 * 8 + 8
        assert Dense(4, 8, rng=rng, use_bias=False).n_parameters == 32

    def test_set_parameters(self, rng):
        a = Dense(3, 3, rng=rng)
        b = Dense(3, 3, rng=np.random.default_rng(99))
        b.set_parameters({k: v.copy() for k, v in a.parameters.items()})
        np.testing.assert_array_equal(a.weights, b.weights)
        np.testing.assert_array_equal(a.bias, b.bias)

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            Dense(0, 4)


class TestOptimizers:
    def _quadratic_layers(self, rng):
        layer = Dense(2, 1, rng=rng)
        return layer

    def test_sgd_reduces_loss(self, rng):
        layer = Dense(2, 1, rng=rng)
        net = Sequential([layer])
        x = rng.normal(size=(64, 2))
        y = (x @ np.array([[1.0], [-2.0]])) + 0.5
        loss = MeanSquaredError()
        opt = SGD(learning_rate=0.1)
        first = net.train_step(x, y, loss, opt)
        for _ in range(200):
            last = net.train_step(x, y, loss, opt)
        assert last < first * 0.01

    def test_adam_reduces_loss(self, rng):
        net = MLP(2, [8], 1, rng=rng)
        x = rng.normal(size=(64, 2))
        y = np.sin(x[:, :1]) + x[:, 1:]
        loss = MeanSquaredError()
        opt = Adam(learning_rate=0.01)
        first = net.train_step(x, y, loss, opt)
        for _ in range(300):
            last = net.train_step(x, y, loss, opt)
        assert last < first * 0.2

    def test_momentum_validation(self):
        with pytest.raises(ValueError):
            SGD(momentum=1.5)

    def test_adam_validation(self):
        with pytest.raises(ValueError):
            Adam(beta1=1.0)
        with pytest.raises(ValueError):
            Adam(learning_rate=-0.1)

    def test_get_optimizer(self):
        assert isinstance(get_optimizer("adam", learning_rate=0.01), Adam)
        with pytest.raises(ValueError):
            get_optimizer("rmsprop")


class TestNetworks:
    def test_mlp_topology(self, rng):
        net = MLP(4, [64, 64], 2, rng=rng)
        assert len(net.layers) == 3
        assert net.n_parameters == 4 * 64 + 64 + 64 * 64 + 64 + 64 * 2 + 2

    def test_predict_shape(self, rng):
        net = MLP(4, [16], 2, rng=rng)
        assert net.predict(rng.normal(size=(7, 4))).shape == (7, 2)

    def test_empty_sequential_rejected(self):
        with pytest.raises(ValueError):
            Sequential([])

    def test_parameter_roundtrip(self, rng):
        a = MLP(3, [8], 2, rng=rng)
        b = MLP(3, [8], 2, rng=np.random.default_rng(123))
        b.set_parameters(a.get_parameters())
        x = rng.normal(size=(5, 3))
        np.testing.assert_allclose(a.predict(x), b.predict(x))

    def test_parameter_snapshot_is_copy(self, rng):
        net = MLP(3, [4], 1, rng=rng)
        snapshot = net.get_parameters()
        net.layers[0].weights += 1.0
        assert not np.allclose(snapshot[0]["weights"], net.layers[0].weights)

    def test_set_parameters_length_mismatch(self, rng):
        net = MLP(3, [4], 1, rng=rng)
        with pytest.raises(ValueError):
            net.set_parameters(net.get_parameters()[:-1])

    def test_fit_regression_decreases_loss(self, rng, small_regression_data):
        x, y = small_regression_data
        net = MLP(3, [32], 1, rng=rng)
        history = net.fit_regression(x, y, epochs=60, batch_size=32, rng=rng)
        assert history[-1] < history[0] * 0.5

    def test_lipschitz_upper_bound_positive(self, rng):
        net = MLP(3, [8], 2, rng=rng)
        assert net.lipschitz_upper_bound() > 0

    def test_invalid_layer_sizes(self, rng):
        with pytest.raises(ValueError):
            MLP(0, [4], 1, rng=rng)
