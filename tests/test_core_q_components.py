"""Tests for the Q-learning building blocks: clipping, Q-function, buffer, policies,
regularization config (Sections 3.1–3.3)."""

import numpy as np
import pytest

from repro.core.clipping import (
    clip_q_target,
    make_reward_shaper,
    q_learning_target,
    shaped_cartpole_reward,
)
from repro.core.elm import ELM
from repro.core.os_elm import OSELM
from repro.core.policies import EpsilonGreedyPolicy, RandomUpdateGate
from repro.core.qfunction import QFunction, encode_state_action, state_action_input_size
from repro.core.regularization import RegularizationConfig, lipschitz_bound
from repro.core.replay import InitialTrainingBuffer, Transition
from repro.utils.exceptions import NotFittedError


class TestClipping:
    def test_clip_range(self):
        assert clip_q_target(5.0) == 1.0
        assert clip_q_target(-5.0) == -1.0
        assert clip_q_target(0.3) == 0.3

    def test_clip_invalid_range(self):
        with pytest.raises(ValueError):
            clip_q_target(0.0, low=1.0, high=-1.0)

    def test_target_bootstrap(self):
        target = q_learning_target(0.0, False, 0.5, gamma=0.9, clip=False)
        assert target == pytest.approx(0.45)

    def test_target_terminal_drops_bootstrap(self):
        assert q_learning_target(-1.0, True, 100.0, gamma=0.99) == -1.0

    def test_target_clipped(self):
        assert q_learning_target(1.0, False, 100.0, gamma=0.99) == 1.0
        assert q_learning_target(1.0, False, 100.0, gamma=0.99, clip=False) == pytest.approx(100.0)

    def test_target_invalid_gamma(self):
        with pytest.raises(ValueError):
            q_learning_target(0.0, False, 0.0, gamma=1.5)

    def test_shaped_reward_failure(self):
        assert shaped_cartpole_reward(True, False, 50) == -1.0

    def test_shaped_reward_success_at_time_limit(self):
        assert shaped_cartpole_reward(False, True, 200) == 1.0

    def test_shaped_reward_success_late_termination(self):
        assert shaped_cartpole_reward(True, False, 197) == 1.0

    def test_shaped_reward_intermediate_zero(self):
        assert shaped_cartpole_reward(False, False, 50) == 0.0

    def test_shaped_rewards_stay_in_clip_range(self):
        for terminated in (True, False):
            for truncated in (True, False):
                for step in (1, 100, 195, 200):
                    assert -1.0 <= shaped_cartpole_reward(terminated, truncated, step) <= 1.0

    def test_reward_shaper_factory(self):
        shaper = make_reward_shaper(success_steps=100)
        assert shaper(True, False, 120) == 1.0
        assert shaper(True, False, 80) == -1.0


class TestRegularizationConfig:
    def test_labels(self):
        assert RegularizationConfig.none().label == ""
        assert RegularizationConfig.l2(1.0).label == "-L2"
        assert RegularizationConfig.lipschitz().label == "-Lipschitz"
        assert RegularizationConfig.l2_lipschitz().label == "-L2-Lipschitz"

    def test_paper_deltas(self):
        assert RegularizationConfig.l2().l2_delta == 1.0
        assert RegularizationConfig.l2_lipschitz().l2_delta == 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            RegularizationConfig(l2_delta=-1.0)
        with pytest.raises(ValueError):
            RegularizationConfig(spectral_norm_target=0.0)

    def test_lipschitz_bound_formula(self, rng):
        alpha = rng.normal(size=(4, 8))
        beta = rng.normal(size=(8, 1))
        expected = np.linalg.norm(alpha, 2) * np.linalg.norm(beta, 2)
        assert lipschitz_bound(alpha, beta, "relu") == pytest.approx(expected)

    def test_lipschitz_bound_sigmoid_smaller(self, rng):
        alpha = rng.normal(size=(4, 8))
        beta = rng.normal(size=(8, 1))
        assert lipschitz_bound(alpha, beta, "sigmoid") < lipschitz_bound(alpha, beta, "relu")


class TestEncodingAndQFunction:
    def test_scalar_encoding_size(self):
        # Paper: 4 states + 1 action value = 5 inputs for CartPole.
        assert state_action_input_size(4, 2) == 5
        assert state_action_input_size(4, 2, one_hot=True) == 6

    def test_encode_scalar(self):
        row = encode_state_action(np.array([1.0, 2.0, 3.0, 4.0]), 1)
        np.testing.assert_array_equal(row, [1.0, 2.0, 3.0, 4.0, 1.0])

    def test_encode_one_hot(self):
        row = encode_state_action(np.array([1.0, 2.0]), 1, n_actions=3, one_hot=True)
        np.testing.assert_array_equal(row, [1.0, 2.0, 0.0, 1.0, 0.0])

    def test_encode_one_hot_requires_n_actions(self):
        with pytest.raises(ValueError):
            encode_state_action(np.zeros(2), 0, one_hot=True)

    def _fitted_qfunction(self, rng, n_hidden=32):
        model = OSELM(5, n_hidden, 1, seed=3)
        qf = QFunction(model, n_states=4, n_actions=2)
        states = rng.uniform(-1, 1, size=(n_hidden, 4))
        actions = rng.integers(0, 2, size=n_hidden)
        targets = rng.uniform(-1, 1, size=n_hidden)
        qf.fit_batch(states, actions, targets)
        return qf

    def test_model_size_validation(self):
        model = ELM(7, 8, 1, seed=0)
        with pytest.raises(ValueError):
            QFunction(model, n_states=4, n_actions=2)

    def test_output_size_validation(self):
        model = ELM(5, 8, 2, seed=0)
        with pytest.raises(ValueError):
            QFunction(model, n_states=4, n_actions=2)

    def test_default_value_before_training(self):
        model = OSELM(5, 8, 1, seed=0)
        qf = QFunction(model, 4, 2, default_value=0.25)
        np.testing.assert_array_equal(qf.q_values(np.zeros(4)), [0.25, 0.25])
        assert qf.value(np.zeros(4), 1) == 0.25

    def test_q_values_and_greedy(self, rng):
        qf = self._fitted_qfunction(rng)
        state = rng.uniform(-1, 1, size=4)
        q = qf.q_values(state)
        assert q.shape == (2,)
        assert qf.greedy_action(state) == int(np.argmax(q))
        assert qf.max_q(state) == pytest.approx(float(np.max(q)))
        assert qf.value(state, 0) == pytest.approx(q[0])

    def test_update_sequentially_moves_prediction(self, rng):
        qf = self._fitted_qfunction(rng)
        state = rng.uniform(-1, 1, size=4)
        target = 0.9
        for _ in range(30):
            qf.update(state, 1, target)
        assert qf.value(state, 1) == pytest.approx(target, abs=0.05)

    def test_update_requires_sequential_model(self, rng):
        model = ELM(5, 8, 1, seed=0)
        qf = QFunction(model, 4, 2)
        with pytest.raises(NotFittedError):
            qf.update(np.zeros(4), 0, 0.5)


class TestBatchedPrediction:
    """Regression tests for the 1-D/2-D shape contract of the batched paths."""

    def _fitted_qfunction(self, rng, one_hot=False):
        n_inputs = 4 + (2 if one_hot else 1)
        model = OSELM(n_inputs, 16, 1, seed=3)
        qf = QFunction(model, n_states=4, n_actions=2, one_hot_actions=one_hot)
        states = rng.uniform(-1, 1, size=(16, 4))
        actions = rng.integers(0, 2, size=16)
        qf.fit_batch(states, actions, rng.uniform(-1, 1, size=16))
        return qf

    def test_elm_predict_mirrors_input_ndim(self, rng):
        model = ELM(5, 8, 1, seed=0)
        x = rng.uniform(size=(20, 5))
        model.fit(x, rng.uniform(size=(20, 1)))
        single = model.predict(x[0])
        batch = model.predict(x[:4])
        assert single.shape == (1,)
        assert batch.shape == (4, 1)
        # BLAS may block the batched GEMM differently from the single-row
        # product, so agreement is to rounding, not bit-for-bit.
        np.testing.assert_allclose(single, batch[0], rtol=1e-10, atol=1e-12)

    def test_qfunction_predict_round_trip(self, rng):
        qf = self._fitted_qfunction(rng)
        state = rng.uniform(-1, 1, size=4)
        scalar = qf.predict(state, 1)
        batch = qf.predict(state.reshape(1, -1), [1])
        assert isinstance(scalar, float)
        assert batch.shape == (1,)
        assert scalar == batch[0]
        assert scalar == pytest.approx(qf.value(state, 1))

    def test_qfunction_predict_before_training(self):
        qf = QFunction(OSELM(5, 8, 1, seed=0), 4, 2, default_value=0.5)
        assert qf.predict(np.zeros(4), 0) == 0.5
        np.testing.assert_array_equal(qf.predict(np.zeros((3, 4)), [0, 1, 0]),
                                      [0.5, 0.5, 0.5])

    def test_q_values_batch_matches_single(self, rng):
        qf = self._fitted_qfunction(rng)
        states = rng.uniform(-1, 1, size=(6, 4))
        batch = qf.q_values(states)
        assert batch.shape == (6, 2)
        for i in range(6):
            np.testing.assert_allclose(batch[i], qf.q_values(states[i]),
                                       rtol=1e-10, atol=1e-12)

    def test_q_values_batch_one_hot(self, rng):
        qf = self._fitted_qfunction(rng, one_hot=True)
        states = rng.uniform(-1, 1, size=(3, 4))
        batch = qf.q_values(states)
        assert batch.shape == (3, 2)
        for i in range(3):
            np.testing.assert_allclose(batch[i], qf.q_values(states[i]),
                                       rtol=1e-10, atol=1e-12)

    def test_greedy_and_max_q_batch_shapes(self, rng):
        qf = self._fitted_qfunction(rng)
        states = rng.uniform(-1, 1, size=(5, 4))
        greedy = qf.greedy_action(states)
        top = qf.max_q(states)
        assert greedy.shape == (5,) and top.shape == (5,)
        assert isinstance(qf.greedy_action(states[0]), int)
        assert isinstance(qf.max_q(states[0]), float)
        q = qf.q_values(states)
        np.testing.assert_array_equal(greedy, np.argmax(q, axis=1))
        np.testing.assert_array_equal(top, np.max(q, axis=1))

    def test_untrained_batch_shapes(self):
        qf = QFunction(OSELM(5, 8, 1, seed=0), 4, 2, default_value=0.0)
        assert qf.q_values(np.zeros((3, 4))).shape == (3, 2)
        np.testing.assert_array_equal(qf.greedy_action(np.zeros((3, 4))), [0, 0, 0])

    def test_encode_batch_mismatch(self, rng):
        qf = self._fitted_qfunction(rng)
        with pytest.raises(ValueError):
            qf.encode_batch(np.zeros((3, 4)), [0, 1])


class TestInitialTrainingBuffer:
    def test_store_and_len(self):
        buffer = InitialTrainingBuffer(4)
        for i in range(3):
            buffer.store(np.zeros(4), i % 2, 0.0, np.ones(4), False)
        assert len(buffer) == 3
        assert not buffer.full

    def test_fifo_eviction(self):
        buffer = InitialTrainingBuffer(2)
        for reward in (1.0, 2.0, 3.0):
            buffer.store(np.zeros(2), 0, reward, np.zeros(2), False)
        assert len(buffer) == 2
        assert buffer[0].reward == 2.0
        assert buffer[1].reward == 3.0

    def test_as_batches_shapes(self):
        buffer = InitialTrainingBuffer(3)
        for i in range(3):
            buffer.store(np.full(4, i), i % 2, float(i), np.full(4, i + 1), i == 2)
        states, actions, rewards, next_states, dones = buffer.as_batches()
        assert states.shape == (3, 4)
        assert actions.tolist() == [0, 1, 0]
        assert rewards.tolist() == [0.0, 1.0, 2.0]
        assert next_states.shape == (3, 4)
        assert dones.tolist() == [False, False, True]

    def test_as_batches_empty(self):
        with pytest.raises(ValueError):
            InitialTrainingBuffer(2).as_batches()

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            InitialTrainingBuffer(0)

    def test_memory_footprint_small(self):
        """The whole buffer for N-tilde=64 CartPole transitions is only a few KB
        (the paper's point: no DQN-style replay memory is needed)."""
        buffer = InitialTrainingBuffer(64)
        for _ in range(64):
            buffer.store(np.zeros(4), 0, 0.0, np.zeros(4), False)
        assert buffer.nbytes < 10_000

    def test_transition_astuple(self):
        t = Transition(np.zeros(2), 1, 0.5, np.ones(2), True)
        state, action, reward, next_state, done = t.astuple()
        assert action == 1 and reward == 0.5 and done

    def test_clear(self):
        buffer = InitialTrainingBuffer(2)
        buffer.store(np.zeros(1), 0, 0.0, np.zeros(1), False)
        buffer.clear()
        assert len(buffer) == 0


class TestPolicies:
    def test_epsilon_greedy_paper_convention(self):
        """epsilon_1 is the probability of the GREEDY action (Algorithm 1 lines 10-13)."""
        policy = EpsilonGreedyPolicy(greedy_probability=1.0, n_actions=2, seed=0)
        q = np.array([0.1, 0.9])
        assert all(policy.select(q) == 1 for _ in range(20))

    def test_epsilon_zero_always_random(self):
        policy = EpsilonGreedyPolicy(greedy_probability=0.0, n_actions=4, seed=0)
        q = np.array([10.0, 0.0, 0.0, 0.0])
        choices = {policy.select(q) for _ in range(200)}
        assert len(choices) == 4    # explores the whole action set

    def test_greedy_fraction_statistics(self):
        policy = EpsilonGreedyPolicy(greedy_probability=0.7, n_actions=2, seed=1)
        q = np.array([0.0, 1.0])
        for _ in range(5000):
            policy.select(q)
        fraction = policy.greedy_selections / 5000
        assert 0.65 < fraction < 0.75

    def test_explore_false_forces_greedy(self):
        policy = EpsilonGreedyPolicy(greedy_probability=0.0, n_actions=2, seed=0)
        assert policy.select(np.array([0.0, 1.0]), explore=False) == 1

    def test_wrong_q_length(self):
        policy = EpsilonGreedyPolicy(0.5, 3, seed=0)
        with pytest.raises(ValueError):
            policy.select(np.zeros(2))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            EpsilonGreedyPolicy(1.5, 2)
        with pytest.raises(ValueError):
            EpsilonGreedyPolicy(0.5, 0)

    def test_random_update_gate_statistics(self):
        gate = RandomUpdateGate(0.5, seed=0)
        decisions = [gate.should_update() for _ in range(4000)]
        assert 0.45 < np.mean(decisions) < 0.55
        assert gate.accepted + gate.rejected == 4000
        assert gate.acceptance_rate == pytest.approx(np.mean(decisions))

    def test_random_update_gate_extremes(self):
        always = RandomUpdateGate(1.0, seed=0)
        never = RandomUpdateGate(0.0, seed=0)
        assert all(always.should_update() for _ in range(50))
        assert not any(never.should_update() for _ in range(50))

    def test_reset_counters(self):
        gate = RandomUpdateGate(0.5, seed=0)
        gate.should_update()
        gate.reset_counters()
        assert gate.accepted == 0 and gate.rejected == 0
