"""The broker's write-ahead journal: record/replay, crash tolerance, resume.

Unit tests drive :class:`~repro.distributed.journal.SweepJournal` directly;
the broker-level tests restart a :class:`~repro.distributed.broker.
SweepBroker` on the journal a previous broker instance left behind — the
in-process equivalent of the SIGKILL scenario `tests/test_chaos.py` runs
against a real subprocess.
"""

import socket
import time

import pytest

from repro.distributed import protocol
from repro.distributed.broker import SweepBroker
from repro.distributed.journal import (
    JournalError,
    SweepJournal,
    count_deliveries,
    task_journal_key,
)
from repro.parallel.sweep import SweepSpec
from repro.rl.runner import TrainingConfig


def _tiny_tasks(n_seeds=2, root_seed=99):
    spec = SweepSpec(designs=("OS-ELM-L2",), n_seeds=n_seeds, n_hidden=8,
                     training=TrainingConfig(max_episodes=3),
                     root_seed=root_seed)
    return spec.tasks()


class _ScriptedWorker:
    """A bare socket speaking the worker protocol (see test_distributed_broker)."""

    def __init__(self, broker, worker_id="scripted"):
        host, port = broker.address
        self.sock = socket.create_connection((host, port), timeout=5.0)
        protocol.send_message(self.sock, protocol.HELLO, worker_id)
        kind, info = protocol.recv_message(self.sock)
        assert kind == protocol.WELCOME
        self.welcome_info = info

    def get(self, capacity=None):
        protocol.send_message(self.sock, protocol.GET, capacity)
        return protocol.recv_message(self.sock)

    def send_result(self, index, result="result", backend="distributed"):
        protocol.send_message(self.sock, protocol.RESULT,
                              (index, result, backend))
        kind, fresh = protocol.recv_message(self.sock)
        assert kind == protocol.ACK
        return fresh

    def close(self):
        self.sock.close()


def _wait_until(predicate, timeout=5.0, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.01)
    raise AssertionError(f"timed out waiting for {message}")


class TestSweepJournalUnit:
    def test_missing_file_replays_to_nothing(self, tmp_path):
        replay = SweepJournal(tmp_path / "never-written.journal").load()
        assert replay.results == {}
        assert replay.sessions == 0
        assert not replay.truncated_tail

    def test_record_roundtrip(self, tmp_path):
        path = tmp_path / "sweep.journal"
        with SweepJournal(path) as journal:
            journal.open(tasks=3, done=0)
            journal.record_lease(["k0", "k1"], "w0")
            journal.record_deliver("k0", {"curve": [1, 2, 3]}, "distributed")
            journal.record_requeue(["k1"], "w0", reason="disconnect")
            journal.record_drain(["w0"])
        replay = SweepJournal(path).load()
        assert replay.sessions == 1
        assert replay.leases == 2
        assert replay.requeues == 1
        assert replay.drains == 1
        assert replay.delivered == 1
        result, backend = replay.results["k0"]
        assert result == {"curve": [1, 2, 3]}
        assert backend == "distributed"
        assert not replay.truncated_tail

    def test_truncated_tail_is_tolerated_and_flagged(self, tmp_path):
        path = tmp_path / "sweep.journal"
        with SweepJournal(path) as journal:
            journal.open(tasks=1, done=0)
            journal.record_deliver("k0", "r0", "distributed")
        # The broker died mid-append: a dangling partial record, no newline.
        with open(path, "ab") as fh:
            fh.write(b'{"op":"deliver","key":"k1","resu')
        replay = SweepJournal(path).load()
        assert replay.truncated_tail
        assert list(replay.results) == ["k0"]    # the partial line is ignored

    def test_malformed_mid_file_record_raises(self, tmp_path):
        path = tmp_path / "sweep.journal"
        path.write_bytes(b'not json at all\n{"op":"open","version":1}\n')
        with pytest.raises(JournalError, match="malformed"):
            SweepJournal(path).load()

    def test_unknown_op_raises(self, tmp_path):
        path = tmp_path / "sweep.journal"
        path.write_bytes(b'{"op":"explode"}\n')
        with pytest.raises(JournalError, match="unknown journal op"):
            SweepJournal(path).load()

    def test_future_format_version_refused(self, tmp_path):
        path = tmp_path / "sweep.journal"
        path.write_bytes(b'{"op":"open","version":999}\n')
        with pytest.raises(JournalError, match="v999"):
            SweepJournal(path).load()

    def test_duplicate_deliveries_first_wins(self, tmp_path):
        path = tmp_path / "sweep.journal"
        with SweepJournal(path) as journal:
            journal.open(tasks=1, done=0)
            journal.record_deliver("k0", "first", "distributed")
            journal.record_deliver("k0", "second", "distributed")
        replay = SweepJournal(path).load()
        assert replay.results["k0"] == ("first", "distributed")

    def test_count_deliveries_tolerates_partial_tail(self, tmp_path):
        path = tmp_path / "sweep.journal"
        assert count_deliveries(path) == 0       # missing file: zero, no raise
        with SweepJournal(path) as journal:
            journal.open(tasks=2, done=0)
            journal.record_deliver("k0", "r0", "distributed")
            journal.record_deliver("k1", "r1", "distributed")
        with open(path, "ab") as fh:
            fh.write(b'{"op":"deliver","key":"k2"')  # partial: not counted
        assert count_deliveries(path) == 2

    def test_append_requires_open(self, tmp_path):
        journal = SweepJournal(tmp_path / "sweep.journal")
        with pytest.raises(RuntimeError, match="not open"):
            journal.append("lease", keys=[], worker="w")


class TestBrokerJournalReplay:
    def test_restarted_broker_resumes_where_the_first_stopped(self, tmp_path):
        path = tmp_path / "sweep.journal"
        tasks = _tiny_tasks(2)
        first = SweepBroker(tasks, journal=str(path)).start()   # str coerces
        try:
            worker = _ScriptedWorker(first, "w0")
            kind, (index, _task) = worker.get()
            assert kind == protocol.TASK and index == 0
            assert worker.send_result(0, result="r0") is True
            worker.close()
        finally:
            first.close()                     # "crash": task 1 never ran
        assert count_deliveries(path) == 1

        second = SweepBroker(_tiny_tasks(2), journal=path).start()
        try:
            assert second.journal_replayed_results == 1
            snap = second.stats_snapshot()
            assert snap["tasks"] == {"total": 2, "queued": 1,
                                     "leased": 0, "done": 1}
            assert snap["counters"]["journal_replayed"] == 1
            worker = _ScriptedWorker(second, "w1")
            kind, (index, _task) = worker.get()
            assert kind == protocol.TASK and index == 1   # not task 0 again
            assert worker.send_result(1, result="r1") is True
            assert second.join(timeout=2.0)
            assert [r for r, _ in second.results()] == ["r0", "r1"]
            worker.close()
        finally:
            second.close()
        # Two broker sessions on one journal, both recorded.
        assert SweepJournal(path).load().sessions == 2

    def test_in_flight_lease_at_crash_is_requeued_on_restart(self, tmp_path):
        path = tmp_path / "sweep.journal"
        first = SweepBroker(_tiny_tasks(1), journal=path).start()
        try:
            worker = _ScriptedWorker(first, "doomed")
            kind, _payload = worker.get()
            assert kind == protocol.TASK     # lease held, never delivered
        finally:
            first.close()
        replay = SweepJournal(path).load()
        assert replay.leases == 1 and replay.delivered == 0
        second = SweepBroker(_tiny_tasks(1), journal=path).start()
        try:
            assert second.stats_snapshot()["tasks"]["queued"] == 1
            survivor = _ScriptedWorker(second, "survivor")
            kind, (index, _task) = survivor.get()
            assert kind == protocol.TASK and index == 0
            survivor.send_result(0)
            assert second.join(timeout=2.0)
            survivor.close()
        finally:
            second.close()

    def test_journal_from_a_different_grid_matches_nothing(self, tmp_path):
        path = tmp_path / "sweep.journal"
        first = SweepBroker(_tiny_tasks(1, root_seed=7), journal=path).start()
        try:
            worker = _ScriptedWorker(first, "w0")
            worker.get()
            worker.send_result(0, result="foreign")
            worker.close()
        finally:
            first.close()
        # Same shape, different root seed: every trial_key differs, so the
        # foreign journal restores nothing instead of poisoning the queue.
        second = SweepBroker(_tiny_tasks(1, root_seed=8), journal=path)
        try:
            assert second.journal_replayed_results == 0
            assert second.stats_snapshot()["tasks"]["queued"] == 1
        finally:
            second.close()

    def test_duplicate_redelivery_after_replay_is_deduped(self, tmp_path):
        """A worker that computed a result during the outage redelivers it
        to the restarted broker; the replayed copy already won."""
        path = tmp_path / "sweep.journal"
        tasks = _tiny_tasks(1)
        first = SweepBroker(tasks, journal=path).start()
        try:
            worker = _ScriptedWorker(first, "w0")
            worker.get()
            assert worker.send_result(0, result="original") is True
            worker.close()
        finally:
            first.close()
        second = SweepBroker(_tiny_tasks(1), journal=path).start()
        try:
            late = _ScriptedWorker(second, "w0")
            assert late.send_result(0, result="stale-copy") is False
            assert second.duplicate_results == 1
            assert [r for r, _ in second.results()] == ["original"]
            late.close()
        finally:
            second.close()

    def test_journal_records_lease_requeue_and_drain_ops(self, tmp_path):
        path = tmp_path / "sweep.journal"
        broker = SweepBroker(_tiny_tasks(2), journal=path).start()
        try:
            doomed = _ScriptedWorker(broker, "doomed")
            doomed.get()
            assert broker.mark_draining(["doomed"])["marked"] == ["doomed"]
            doomed.close()                   # disconnect: requeue journaled
            _wait_until(lambda: broker.requeued_tasks == 1,
                        message="disconnect requeue")
        finally:
            broker.close()
        replay = SweepJournal(path).load()
        assert replay.leases == 1
        assert replay.requeues == 1
        assert replay.drains == 1

    def test_journal_key_is_the_store_content_address(self):
        from repro.api.store import trial_key

        task = _tiny_tasks(1)[0]
        assert task_journal_key(task) == trial_key(task)

    def test_journalless_broker_reports_zero_counters(self):
        """With no journal the broker's books are unchanged from v1.7."""
        with SweepBroker(_tiny_tasks(1)) as broker:
            assert broker.journal is None
            snap = broker.stats_snapshot()
            assert snap["counters"]["journal_replayed"] == 0
            assert snap["counters"]["worker_reconnections"] == 0

    def test_journal_rejected_off_the_distributed_backend(self, tmp_path):
        from repro.api.engine import run
        from repro.api.spec import ExperimentSpec
        from repro.parallel.sweep import SweepRunner

        with pytest.raises(ValueError, match="journal"):
            SweepRunner(_tiny_tasks(1), backend="serial",
                        journal=str(tmp_path / "j"))
        spec = ExperimentSpec(name="nope", designs=("OS-ELM-L2",),
                              hidden_sizes=(8,), n_seeds=1)
        with pytest.raises(ValueError, match="journal"):
            run(spec, backend="serial", journal=str(tmp_path / "j"))
