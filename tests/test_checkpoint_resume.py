"""Mid-trial checkpointing: a killed run resumes inside a trial, bit-for-bit.

The CheckpointCallback periodically pickles the Trainer's full serial state
(agent, env, criterion, curve — every RNG stream included) into the
artifact store; a later fit of the same trial restores it and continues.
Because capture happens at episode boundaries with complete state, the
resumed trajectory is byte-identical to the uninterrupted one — which is
what lets ``repro run --paper --checkpoint-every N`` survive kills without
perturbing the reproduction.
"""

import numpy as np
import pytest

from repro.api import run as run_experiment
from repro.api.spec import Budget, ExperimentSpec
from repro.api.store import ArtifactStore
from repro.training import Callback, CheckpointCallback, Trainer


def _spec(**overrides):
    defaults = dict(name="ckpt-tiny", designs=("OS-ELM-L2",), hidden_sizes=(8,),
                    n_seeds=1, budget=Budget(max_episodes=8))
    defaults.update(overrides)
    return ExperimentSpec(**defaults)


class _KillAfter(Callback):
    """Simulates a mid-trial kill by raising after N finished episodes."""

    class Killed(RuntimeError):
        pass

    def __init__(self, episodes):
        self.episodes = episodes
        self.seen = 0

    def on_episode_end(self, trial, record):
        self.seen += 1
        if self.seen >= self.episodes:
            raise self.Killed(f"simulated kill after episode {record.episode}")


class TestStoreTrialState:
    def test_state_roundtrip_and_clear(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        task = _spec().tasks()[0]
        assert store.load_trial_state(task) is None
        store.save_trial_state(task, b"blob-1")
        assert store.load_trial_state(task) == b"blob-1"
        store.save_trial_state(task, b"blob-2")         # overwrite is atomic
        assert store.load_trial_state(task) == b"blob-2"
        store.clear_trial_state(task)
        assert store.load_trial_state(task) is None
        store.clear_trial_state(task)                   # idempotent

    def test_finished_trial_supersedes_state(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        task = _spec().tasks()[0]
        store.save_trial_state(task, b"stale")
        result = Trainer().fit(task.make_agent(), config=task.training,
                               n_hidden=task.n_hidden)
        store.save_trial(task, result, backend_used="serial")
        assert store.load_trial_state(task) is None


class TestTrainerMidTrialResume:
    def test_killed_run_resumes_bit_for_bit(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        task = _spec(budget=Budget(max_episodes=10)).tasks()[0]

        uninterrupted = Trainer().fit(task.make_agent(), config=task.training)

        killer = _KillAfter(5)
        checkpoint = CheckpointCallback(store, task, every=2)
        with pytest.raises(_KillAfter.Killed):
            Trainer(callbacks=[checkpoint, killer]).fit(
                task.make_agent(), config=task.training)
        assert checkpoint.saves >= 1
        assert store.load_trial_state(task) is not None

        resumed = Trainer(callbacks=[CheckpointCallback(store, task, every=2)]
                          ).fit(task.make_agent(), config=task.training)
        np.testing.assert_array_equal(uninterrupted.curve.steps,
                                      resumed.curve.steps)
        assert [r.shaped_return for r in uninterrupted.curve.records] \
            == [r.shaped_return for r in resumed.curve.records]
        assert [r.moving_average for r in uninterrupted.curve.records] \
            == [r.moving_average for r in resumed.curve.records]
        assert uninterrupted.solved == resumed.solved
        assert uninterrupted.episodes_to_solve == resumed.episodes_to_solve
        # The finished run retires its mid-trial state.
        assert store.load_trial_state(task) is None

    def test_checkpoint_hook_fires(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        task = _spec().tasks()[0]

        class _CountCheckpoints(Callback):
            count = 0

            def on_checkpoint(self, trial):
                type(self).count += 1

        counter = _CountCheckpoints()
        Trainer(callbacks=[CheckpointCallback(store, task, every=3), counter]
                ).fit(task.make_agent(), config=task.training)
        assert counter.count >= 1

    def test_corrupt_state_reads_as_fresh_start(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        task = _spec().tasks()[0]
        store.save_trial_state(task, b"\x00not-a-pickle")
        clean = Trainer().fit(task.make_agent(), config=task.training)
        recovered = Trainer(callbacks=[CheckpointCallback(store, task, every=4)]
                            ).fit(task.make_agent(), config=task.training)
        np.testing.assert_array_equal(clean.curve.steps, recovered.curve.steps)


class TestEngineMidTrialResume:
    def test_repro_run_resumes_mid_trial_with_identical_csv(self, tmp_path):
        """The CI contract: kill a `repro run` mid-trial, rerun it, and the
        summary CSV is byte-identical to an uninterrupted run's."""
        spec = _spec(budget=Budget(max_episodes=10))
        reference = run_experiment(spec, backend="serial")

        store = ArtifactStore(tmp_path / "store")
        task = spec.tasks()[0]
        with pytest.raises(_KillAfter.Killed):
            Trainer(callbacks=[CheckpointCallback(store, task, every=2),
                               _KillAfter(5)]).fit(
                task.make_agent(), config=task.training)
        assert store.load_trial_state(task) is not None   # genuinely mid-trial

        resumed = run_experiment(spec, backend="serial", store=store,
                                 checkpoint_every=2)
        assert resumed.executed_count == 1                # trial completed now
        assert resumed.summary_csv() == reference.summary_csv()
        np.testing.assert_array_equal(reference.results()[0].curve.steps,
                                      resumed.results()[0].curve.steps)

        # And a third run is a pure cache hit.
        cached = run_experiment(spec, backend="serial", store=store)
        assert cached.executed_count == 0
        assert cached.summary_csv() == reference.summary_csv()

    def test_no_resume_discards_stale_mid_trial_state(self, tmp_path):
        """`--no-resume` means retrain, full stop: a stale mid-trial state
        snapshot must be discarded, not silently resumed from."""
        spec = _spec(budget=Budget(max_episodes=10))
        reference = run_experiment(spec, backend="serial")

        store = ArtifactStore(tmp_path / "store")
        task = spec.tasks()[0]
        with pytest.raises(_KillAfter.Killed):
            Trainer(callbacks=[CheckpointCallback(store, task, every=2),
                               _KillAfter(5)]).fit(
                task.make_agent(), config=task.training)
        assert store.load_trial_state(task) is not None

        retrained = run_experiment(spec, backend="serial", store=store,
                                   resume=False, checkpoint_every=2)
        assert retrained.executed_count == 1
        # Identical outcome proves a genuine from-scratch retrain (fixed
        # seeds): a resume would also match, so additionally assert the
        # stale snapshot was cleared before training started (it was
        # replaced only by this run's own checkpoints, which the finished
        # trial then retires).
        assert retrained.summary_csv() == reference.summary_csv()
        assert store.load_trial_state(task) is None
