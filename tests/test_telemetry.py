"""Tests for repro.telemetry: registry, spans, callback, JSON logging.

The load-bearing property asserted throughout is that telemetry stays
strictly off the numeric path — enabling it must not change a single
training curve byte — while still producing a coherent, JSON-serializable
picture of what a run did.
"""

import io
import json
import math
import threading

import numpy as np
import pytest

from repro import telemetry
from repro.parallel.sweep import SweepRunner, SweepSpec
from repro.rl.runner import TrainingConfig
from repro.telemetry.registry import (
    COUNT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.utils import logging as repro_logging


@pytest.fixture(autouse=True)
def _isolated_telemetry():
    """Each test starts disabled with empty metrics and leaves no residue."""
    telemetry.disable()
    telemetry.reset()
    yield
    telemetry.disable()
    telemetry.reset()


def _tiny_sweep():
    return SweepSpec(designs=("OS-ELM-L2",), n_seeds=1, n_hidden=8,
                     training=TrainingConfig(max_episodes=4), root_seed=7)


class TestHistogram:
    def test_exact_stats_and_interpolated_percentiles(self):
        hist = Histogram("h", buckets=(1.0, 2.0, 4.0, 8.0))
        for value in (0.5, 1.5, 1.5, 3.0, 7.0):
            hist.observe(value)
        assert hist.count == 5
        assert hist.sum == pytest.approx(13.5)
        assert hist.min == 0.5 and hist.max == 7.0
        assert hist.mean == pytest.approx(2.7)
        # p50 lands in the (1, 2] bucket; the estimate must stay inside it.
        assert 1.0 <= hist.percentile(0.5) <= 2.0
        assert hist.percentile(0.0) == pytest.approx(0.5)   # clamped to min
        assert hist.percentile(1.0) == pytest.approx(7.0)   # clamped to max

    def test_overflow_bucket_reports_observed_max(self):
        hist = Histogram("h", buckets=(1.0, 2.0))
        hist.observe(100.0)
        hist.observe(250.0)
        assert hist.percentile(0.5) == pytest.approx(250.0)
        assert hist.summary()["p99"] == pytest.approx(250.0)

    def test_estimate_never_leaves_observed_range(self):
        hist = Histogram("h", buckets=(10.0, 20.0))
        hist.observe(12.0)                  # alone in the (10, 20] bucket
        for q in (0.1, 0.5, 0.9, 0.99):
            assert hist.percentile(q) == pytest.approx(12.0)

    def test_empty_histogram_summary_is_zeros(self):
        summary = Histogram("h").summary()
        assert summary == {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
                           "mean": 0.0, "p50": 0.0, "p90": 0.0, "p99": 0.0}

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("h", buckets=(1.0, 1.0))
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("h", buckets=())
        with pytest.raises(ValueError, match="q must be"):
            Histogram("h").percentile(1.5)

    def test_percentiles_track_a_known_distribution(self):
        hist = Histogram("h", buckets=COUNT_BUCKETS)
        values = list(range(1, 101))        # 1..100, uniform
        for value in values:
            hist.observe(value)
        # Fixed-bucket estimates are only bucket-resolution accurate; with
        # the count buckets that means within the containing decade.
        assert hist.percentile(0.5) == pytest.approx(50, rel=0.5)
        assert hist.percentile(0.99) == pytest.approx(99, rel=0.5)

    def test_thread_safe_observation(self):
        hist = Histogram("h", buckets=(10.0,))

        def hammer():
            for _ in range(1000):
                hist.observe(1.0)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert hist.count == 4000
        assert hist.sum == pytest.approx(4000.0)


class TestRegistry:
    def test_counter_and_gauge(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        gauge = Gauge("g")
        gauge.set(2.5)
        gauge.inc()
        gauge.dec(0.5)
        assert gauge.value == pytest.approx(3.0)

    def test_create_on_first_use_returns_same_metric(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h") is registry.histogram("h")
        assert registry.names() == ["a", "h"]

    def test_snapshot_schema_is_json_serializable(self):
        registry = MetricsRegistry()
        registry.counter("jobs").inc(3)
        registry.gauge("depth").set(1.5)
        registry.histogram("lat").observe(0.02)
        snap = json.loads(json.dumps(registry.snapshot()))
        assert snap["counters"] == {"jobs": 3}
        assert snap["gauges"] == {"depth": 1.5}
        assert snap["histograms"]["lat"]["count"] == 1
        registry.reset()
        assert registry.names() == []


class TestTracing:
    def test_disabled_span_is_shared_noop(self):
        assert not telemetry.enabled()
        first = telemetry.span("anything")
        assert first is telemetry.span("other")     # one shared null object
        with first:
            pass
        assert telemetry.span_snapshot() == {}

    def test_nested_spans_build_a_tree(self):
        telemetry.enable()
        with telemetry.span("outer"):
            for _ in range(3):
                with telemetry.span("inner"):
                    pass
        with telemetry.span("outer"):
            pass
        tree = telemetry.span_snapshot()
        assert tree["outer"]["count"] == 2
        assert tree["outer"]["children"]["inner"]["count"] == 3
        assert tree["outer"]["seconds"] >= 0.0
        json.dumps(tree)                            # JSON-ready
        telemetry.reset_spans()
        assert telemetry.span_snapshot() == {}

    def test_spans_aggregate_not_log(self):
        """Memory stays bounded: a million spans is one node."""
        telemetry.enable()
        for _ in range(1000):
            with telemetry.span("hot"):
                pass
        tree = telemetry.span_snapshot()
        assert tree["hot"]["count"] == 1000
        assert "children" not in tree["hot"]

    def test_emitters_are_noops_while_disabled(self):
        telemetry.count("c")
        telemetry.observe("h", 1.0)
        telemetry.set_gauge("g", 1.0)
        assert telemetry.get_registry().names() == []
        telemetry.enable()
        telemetry.count("c", 2)
        telemetry.observe("h", 1.0)
        telemetry.set_gauge("g", 4.0)
        snap = telemetry.get_registry().snapshot()
        assert snap["counters"]["c"] == 2
        assert snap["gauges"]["g"] == 4.0

    def test_full_snapshot_document(self):
        telemetry.enable()
        telemetry.count("events")
        with telemetry.span("work"):
            pass
        doc = json.loads(json.dumps(telemetry.snapshot()))
        assert doc["enabled"] is True
        assert doc["metrics"]["counters"]["events"] == 1
        assert doc["spans"]["work"]["count"] == 1
        assert set(doc["transport"]) == {"frames_sent", "frames_received",
                                         "bytes_sent", "bytes_received"}


class TestTelemetryCallback:
    def test_sweep_emits_trainer_metrics(self):
        telemetry.enable()
        SweepRunner(_tiny_sweep(), backend="serial").run()
        snap = telemetry.get_registry().snapshot()
        assert snap["counters"]["trainer.episodes"] == 4
        assert snap["counters"]["trainer.steps"] >= 4
        assert snap["counters"]["trainer.frames"] >= snap["counters"]["trainer.steps"]
        assert (snap["counters"]["trainer.trials_solved"]
                + snap["counters"]["trainer.trials_unsolved"]) == 1
        assert snap["histograms"]["trainer.episode_steps"]["count"] == 4
        assert snap["histograms"]["trainer.episode_seconds"]["count"] == 4

    def test_disabled_sweep_emits_nothing(self):
        SweepRunner(_tiny_sweep(), backend="serial").run()
        assert telemetry.get_registry().names() == []
        assert telemetry.span_snapshot() == {}

    def test_telemetry_does_not_change_training_curves(self):
        """Byte-identity: enabling telemetry perturbs no numeric output."""
        spec = _tiny_sweep()
        plain = SweepRunner(spec, backend="serial").run()
        telemetry.enable()
        instrumented = SweepRunner(spec, backend="serial").run()
        for a, b in zip(plain.results_for(), instrumented.results_for()):
            np.testing.assert_array_equal(a.curve.steps, b.curve.steps)
            np.testing.assert_array_equal(a.curve.moving_average,
                                          b.curve.moving_average)

    def test_engine_writes_telemetry_json_next_to_run_record(self, tmp_path):
        from repro.api import Budget, ExperimentSpec, run

        spec = ExperimentSpec(name="telemetry-tiny", designs=("OS-ELM-L2",),
                              hidden_sizes=(8,), budget=Budget(max_episodes=3))
        telemetry.enable()
        report = run(spec, backend="serial", out=str(tmp_path))
        from repro.api.store import ArtifactStore

        store = ArtifactStore(tmp_path)
        doc = store.load_telemetry(spec.spec_hash)
        assert doc is not None and doc["enabled"] is True
        assert doc["metrics"]["counters"]["trainer.episodes"] >= 1
        assert store.telemetry_path(spec.spec_hash).exists()
        assert len(report.trials) == 1

    def test_engine_skips_telemetry_json_when_disabled(self, tmp_path):
        from repro.api import Budget, ExperimentSpec, run

        spec = ExperimentSpec(name="telemetry-off", designs=("OS-ELM-L2",),
                              hidden_sizes=(8,), budget=Budget(max_episodes=3))
        run(spec, backend="serial", out=str(tmp_path))
        from repro.api.store import ArtifactStore

        store = ArtifactStore(tmp_path)
        assert store.load_telemetry(spec.spec_hash) is None


class TestJsonLogging:
    @pytest.fixture(autouse=True)
    def _restore_format(self):
        original = repro_logging.get_global_format()
        yield
        repro_logging.set_global_format(original)

    def test_json_lines_round_trip(self):
        stream = io.StringIO()
        repro_logging.set_global_format("json")
        logger = repro_logging.Logger("test.json", stream=stream)
        logger.info("trial complete", task=3, seconds=1.25, solved=True)
        logger.warning("lease expired", worker="w-1")
        lines = stream.getvalue().strip().splitlines()
        assert len(lines) == 2
        records = [json.loads(line) for line in lines]
        assert records[0]["msg"] == "trial complete"
        assert records[0]["task"] == 3
        assert records[0]["solved"] is True
        assert records[0]["level"] == "info"
        assert records[0]["logger"] == "test.json"
        assert records[1]["worker"] == "w-1"
        for record in records:
            assert isinstance(record["ts"], float)
            assert isinstance(record["elapsed"], float)

    def test_non_json_fields_are_stringified(self):
        """NaN/Inf and arbitrary objects must never emit invalid JSON."""
        stream = io.StringIO()
        repro_logging.set_global_format("json")
        logger = repro_logging.Logger("test.json", stream=stream)
        logger.info("weird", bad=float("nan"), worse=float("inf"),
                    obj=object(), arr=[1, 2])
        record = json.loads(stream.getvalue())
        assert record["bad"] == "nan"
        assert record["worse"] == "inf"
        assert record["arr"] == "[1, 2]"
        assert not any(isinstance(v, float) and not math.isfinite(v)
                       for v in record.values())

    def test_kv_format_unchanged(self):
        stream = io.StringIO()
        repro_logging.set_global_format("kv")
        logger = repro_logging.Logger("test.kv", stream=stream)
        logger.info("hello", n=3)
        line = stream.getvalue()
        assert "test.kv: hello n=3" in line
        assert line.startswith("[   info")

    def test_loggers_share_one_elapsed_epoch(self):
        """Two loggers created at different times log on one timeline —
        the second logger's clock must not restart at zero."""
        stream = io.StringIO()
        repro_logging.set_global_format("json")
        early = repro_logging.Logger("early", stream=stream)
        early.info("tick")
        late = repro_logging.Logger("late", stream=stream)
        late.info("tock")
        first, second = [json.loads(line)
                         for line in stream.getvalue().strip().splitlines()]
        assert second["elapsed"] >= first["elapsed"]

    def test_invalid_format_rejected(self):
        with pytest.raises(ValueError, match="unknown log format"):
            repro_logging.set_global_format("xml")
