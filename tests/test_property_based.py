"""Property-based tests (hypothesis) on the core numerical invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.clipping import q_learning_target, shaped_cartpole_reward
from repro.core.os_elm import OSELM
from repro.core.regularization import RegularizationConfig
from repro.fixedpoint.qformat import Q20, QFormat
from repro.linalg.incremental import sherman_morrison_update
from repro.linalg.spectral import spectral_norm, spectral_normalize
from repro.utils.metrics import MovingAverage, RunningStats

# Keep hypothesis fast and deterministic for CI-style runs.
_SETTINGS = settings(max_examples=50, deadline=None)

finite_floats = st.floats(min_value=-100.0, max_value=100.0,
                          allow_nan=False, allow_infinity=False)


class TestFixedPointProperties:
    @_SETTINGS
    @given(value=st.floats(min_value=-2000.0, max_value=2000.0,
                           allow_nan=False, allow_infinity=False))
    def test_quantization_error_within_half_lsb(self, value):
        assert abs(Q20.quantize(value) - value) <= Q20.scale / 2 + 1e-12

    @_SETTINGS
    @given(value=finite_floats)
    def test_quantization_idempotent(self, value):
        once = Q20.quantize(value)
        assert Q20.quantize(once) == once

    @_SETTINGS
    @given(value=finite_floats, frac_bits=st.integers(min_value=4, max_value=20))
    def test_more_fractional_bits_never_worse(self, value, frac_bits):
        # frac_bits is capped at 20 so the finer format still represents +-100
        # without saturating (saturation would make "finer" worse at the range edge).
        coarse = QFormat(32, frac_bits)
        fine = QFormat(32, frac_bits + 4)
        assert abs(fine.quantize(value) - value) <= abs(coarse.quantize(value) - value) + 1e-15

    @_SETTINGS
    @given(a=finite_floats, b=finite_floats)
    def test_quantized_addition_commutes(self, a, b):
        qa, qb = Q20.quantize(a), Q20.quantize(b)
        assert Q20.quantize(qa + qb) == Q20.quantize(qb + qa)


class TestClippingProperties:
    @_SETTINGS
    @given(reward=st.floats(min_value=-1.0, max_value=1.0),
           done=st.booleans(),
           max_next=st.floats(min_value=-1e6, max_value=1e6),
           gamma=st.floats(min_value=0.0, max_value=1.0))
    def test_clipped_target_always_in_range(self, reward, done, max_next, gamma):
        target = q_learning_target(reward, done, max_next, gamma=gamma, clip=True)
        assert -1.0 <= target <= 1.0

    @_SETTINGS
    @given(terminated=st.booleans(), truncated=st.booleans(),
           step=st.integers(min_value=1, max_value=100_000))
    def test_shaped_reward_in_range(self, terminated, truncated, step):
        assert shaped_cartpole_reward(terminated, truncated, step) in (-1.0, 0.0, 1.0)

    @_SETTINGS
    @given(reward=st.floats(min_value=-0.5, max_value=0.5),
           max_next=st.floats(min_value=-0.4, max_value=0.4))
    def test_unclipped_values_pass_through(self, reward, max_next):
        target = q_learning_target(reward, False, max_next, gamma=0.5, clip=True)
        assert target == pytest.approx(reward + 0.5 * max_next)


class TestSpectralProperties:
    @_SETTINGS
    @given(matrix=hnp.arrays(np.float64, shape=st.tuples(st.integers(2, 8), st.integers(2, 8)),
                             elements=st.floats(min_value=-5, max_value=5,
                                                allow_nan=False, allow_infinity=False)))
    def test_normalized_spectral_norm_at_most_one(self, matrix):
        normalized, sigma = spectral_normalize(matrix, target=1.0)
        if sigma > 1e-9:
            assert spectral_norm(normalized) <= 1.0 + 1e-9

    @_SETTINGS
    @given(matrix=hnp.arrays(np.float64, shape=(4, 6),
                             elements=st.floats(min_value=-3, max_value=3,
                                                allow_nan=False, allow_infinity=False)),
           scale=st.floats(min_value=0.1, max_value=10.0))
    def test_spectral_norm_is_absolutely_homogeneous(self, matrix, scale):
        assert spectral_norm(scale * matrix) == pytest.approx(scale * spectral_norm(matrix),
                                                              rel=1e-9, abs=1e-9)

    @_SETTINGS
    @given(matrix=hnp.arrays(np.float64, shape=(5, 5),
                             elements=st.floats(min_value=-3, max_value=3,
                                                allow_nan=False, allow_infinity=False)))
    def test_spectral_norm_bounded_by_frobenius(self, matrix):
        assert spectral_norm(matrix) <= np.linalg.norm(matrix) + 1e-9


class TestRecursiveUpdateProperties:
    @_SETTINGS
    @given(rows=st.integers(min_value=5, max_value=20), seed=st.integers(0, 1000))
    def test_p_stays_symmetric_positive_definite_with_ridge(self, rows, seed):
        """With the ReOS-ELM ridge initialisation, P remains SPD through rank-1 updates."""
        rng = np.random.default_rng(seed)
        n = 4
        h0 = rng.normal(size=(6, n))
        p = np.linalg.inv(h0.T @ h0 + 0.5 * np.eye(n))
        for _ in range(rows):
            p = sherman_morrison_update(p, rng.normal(size=n))
        assert np.allclose(p, p.T, atol=1e-8)
        assert np.all(np.linalg.eigvalsh((p + p.T) / 2) > 0)

    @_SETTINGS
    @given(seed=st.integers(0, 500), n_updates=st.integers(1, 30))
    def test_oselm_matches_batch_solution(self, seed, n_updates):
        """Invariant: sequential training equals batch ridge regression (Eqs 5-8)."""
        rng = np.random.default_rng(seed)
        n_in, n_hidden = 3, 8
        total = n_hidden + n_updates
        x = rng.uniform(-1, 1, size=(total, n_in))
        y = rng.uniform(-1, 1, size=(total, 1))
        model = OSELM(n_in, n_hidden, 1, regularization=RegularizationConfig.l2(0.7),
                      seed=seed)
        model.init_train(x[:n_hidden], y[:n_hidden])
        for i in range(n_hidden, total):
            model.seq_train_step(x[i], float(y[i, 0]))
        h = model.hidden(x)
        expected = np.linalg.solve(h.T @ h + 0.7 * np.eye(n_hidden), h.T @ y)
        np.testing.assert_allclose(model.beta, expected, atol=1e-6)


class TestMetricProperties:
    @_SETTINGS
    @given(values=st.lists(finite_floats, min_size=1, max_size=50),
           window=st.integers(min_value=1, max_value=10))
    def test_moving_average_matches_tail_mean(self, values, window):
        avg = MovingAverage(window)
        for value in values:
            avg.add(value)
        expected = float(np.mean(values[-window:]))
        assert avg.value == pytest.approx(expected, rel=1e-9, abs=1e-9)

    @_SETTINGS
    @given(values=st.lists(finite_floats, min_size=2, max_size=100))
    def test_running_stats_match_numpy(self, values):
        stats = RunningStats()
        stats.extend(values)
        assert stats.mean == pytest.approx(float(np.mean(values)), rel=1e-9, abs=1e-9)
        assert stats.variance == pytest.approx(float(np.var(values)), rel=1e-6, abs=1e-9)
