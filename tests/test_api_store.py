"""Tests for the artifact store: content addressing, round-trips, resume."""

import numpy as np
import pytest

from repro.api import ArtifactStore, Budget, ExperimentSpec, run, trial_key
from repro.api.store import trial_descriptor
from repro.rl.runner import train_agent


def _tiny_spec(name="store-spec", **overrides):
    defaults = dict(designs=("OS-ELM-L2",), hidden_sizes=(8,),
                    budget=Budget(max_episodes=4))
    defaults.update(overrides)
    return ExperimentSpec(name=name, **defaults)


def _train(task):
    return train_agent(task.make_agent(), config=task.training,
                       n_hidden=task.n_hidden)


class TestTrialKey:
    def test_deterministic_and_sensitive(self):
        spec = _tiny_spec()
        task = spec.tasks()[0]
        assert trial_key(task) == trial_key(spec.tasks()[0])
        other = _tiny_spec().with_budget(max_episodes=5).tasks()[0]
        assert trial_key(task) != trial_key(other)
        descriptor = trial_descriptor(task)
        assert descriptor["design"] == "OS-ELM-L2"
        assert descriptor["training"]["max_episodes"] == 4

    def test_key_is_spec_independent(self):
        """Two specs expanding to the same trial share one artifact."""
        a = _tiny_spec(name="a").tasks()[0]
        b = _tiny_spec(name="b").tasks()[0]
        assert trial_key(a) == trial_key(b)


class TestStoreRoundTrip:
    def test_save_load_preserves_result(self, tmp_path):
        store = ArtifactStore(tmp_path)
        task = _tiny_spec().tasks()[0]
        result = _train(task)
        assert not store.has_trial(task)
        store.save_trial(task, result, backend_used="serial")
        assert store.has_trial(task)
        loaded, backend_used = store.load_trial(task)
        assert backend_used == "serial"
        assert loaded.design == result.design
        assert loaded.solved == result.solved
        assert loaded.episodes == result.episodes
        assert loaded.episodes_to_solve == result.episodes_to_solve
        assert loaded.seed == result.seed
        assert loaded.weight_resets == result.weight_resets
        np.testing.assert_array_equal(loaded.curve.steps, result.curve.steps)
        np.testing.assert_array_equal(loaded.curve.moving_average,
                                      result.curve.moving_average)
        assert loaded.breakdown.counts == result.breakdown.counts
        assert loaded.breakdown.seconds == pytest.approx(result.breakdown.seconds)
        # summary_rows-visible fields must survive the round trip exactly.
        assert loaded.curve.final_average() == result.curve.final_average()

    def test_missing_trial_reads_as_none(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert store.load_trial(_tiny_spec().tasks()[0]) is None

    def test_corrupt_artifact_reads_as_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        task = _tiny_spec().tasks()[0]
        store.save_trial(task, _train(task), backend_used="serial")
        (store.trial_dir(trial_key(task)) / "trial.json").write_text("{broken")
        assert store.load_trial(task) is None

    @pytest.mark.parametrize("content", [b"", b"PK\x03\x04truncated-archive"])
    def test_partial_npz_reads_as_miss(self, tmp_path, content):
        """A run killed mid-save leaves an empty/truncated curve.npz; later
        runs must treat that trial as a miss, not crash in the cache pass."""
        store = ArtifactStore(tmp_path)
        task = _tiny_spec().tasks()[0]
        store.save_trial(task, _train(task), backend_used="serial")
        (store.trial_dir(trial_key(task)) / "curve.npz").write_bytes(content)
        assert store.load_trial(task) is None
        # and the engine reruns it rather than aborting
        report = run(_tiny_spec(), backend="serial", store=store)
        assert report.executed_count == 1


class TestEngineCaching:
    def test_cache_miss_then_hit(self, tmp_path):
        spec = _tiny_spec()
        first = run(spec, backend="serial", out=str(tmp_path))
        assert first.cached_count == 0 and first.executed_count == 1
        second = run(spec, backend="serial", out=str(tmp_path))
        assert second.cached_count == 1 and second.executed_count == 0
        assert second.summary_rows() == first.summary_rows()
        # run-level record exists for `repro report`
        store = ArtifactStore(tmp_path)
        record = store.load_run(spec.spec_hash)
        assert record is not None
        assert record["trial_keys"] == [trial_key(spec.tasks()[0])]

    def test_cache_shared_across_backends(self, tmp_path):
        spec = _tiny_spec()
        run(spec, backend="vectorized", out=str(tmp_path))
        cached = run(spec, backend="serial", out=str(tmp_path))
        assert cached.cached_count == 1
        assert cached.trials[0].backend_used == "lockstep"   # provenance preserved

    def test_no_resume_forces_rerun(self, tmp_path):
        spec = _tiny_spec()
        run(spec, backend="serial", out=str(tmp_path))
        forced = run(spec, backend="serial", out=str(tmp_path), resume=False)
        assert forced.cached_count == 0 and forced.executed_count == 1

    def test_cache_only_raises_on_missing(self, tmp_path):
        with pytest.raises(RuntimeError, match="not in the artifact store"):
            run(_tiny_spec(), backend="serial", out=str(tmp_path), cache_only=True)

    def test_overlapping_spec_reuses_trials(self, tmp_path):
        """A wider spec whose grid contains an already-run cell must reuse it."""
        run(_tiny_spec(), backend="serial", out=str(tmp_path))
        wider = _tiny_spec(name="wider", designs=("OS-ELM-L2", "ELM"))
        report = run(wider, backend="serial", out=str(tmp_path))
        cached = {record.task.design: record.cached for record in report.trials}
        assert cached == {"OS-ELM-L2": True, "ELM": False}

    def test_no_store_runs_pure(self, tmp_path, monkeypatch):
        """Without out/store nothing may be written to the default root."""
        monkeypatch.chdir(tmp_path)
        report = run(_tiny_spec(), backend="serial")
        assert report.store_root is None
        assert not (tmp_path / "artifacts").exists()


class TestPolicyPersistence:
    def test_save_load_round_trip(self, tmp_path):
        store = ArtifactStore(tmp_path)
        task = _tiny_spec().tasks()[0]
        agent = task.make_agent()
        _train(task)
        assert not store.has_policy(task)
        assert store.load_policy(task) is None
        store.save_policy(task, agent)
        assert store.has_policy(task)
        loaded = store.load_policy(task)
        assert type(loaded) is type(agent)
        state = np.array([0.1, -0.2, 0.03, 0.4])
        assert loaded.act(state, explore=False) == agent.act(state,
                                                             explore=False)

    def test_corrupt_policy_reads_as_none(self, tmp_path):
        store = ArtifactStore(tmp_path)
        task = _tiny_spec().tasks()[0]
        store.save_policy(task, task.make_agent())
        store.policy_path(task).write_bytes(b"not a pickle")
        assert store.load_policy(task) is None

    @pytest.mark.parametrize("backend", ["serial", "vectorized", "process"])
    def test_run_save_policy_writes_every_trial(self, tmp_path, backend):
        spec = _tiny_spec(designs=("OS-ELM-L2", "ELM"))
        report = run(spec, backend=backend, out=str(tmp_path),
                     save_policy=True)
        assert report.executed_count == 2
        store = ArtifactStore(tmp_path)
        for task in spec.tasks():
            assert store.has_policy(task), task.design
            agent = store.load_policy(task)
            assert callable(getattr(agent, "act_batch", None))

    def test_save_policy_requires_a_store(self):
        with pytest.raises(ValueError, match="save_policy"):
            run(_tiny_spec(), backend="serial", save_policy=True)

    def test_save_policy_rejects_distributed_backend(self, tmp_path):
        with pytest.raises(ValueError, match="distributed"):
            run(_tiny_spec(), backend="distributed", out=str(tmp_path),
                save_policy=True)

    def test_load_spec_policies_finds_saved_agents(self, tmp_path):
        from repro.serving import load_spec_policies

        spec = _tiny_spec(designs=("OS-ELM-L2", "ELM"))
        run(spec, backend="serial", out=str(tmp_path), save_policy=True)
        store = ArtifactStore(tmp_path)
        policies, problems = load_spec_policies(store, spec)
        assert problems == []
        assert sorted(policies) == ["ELM", "OS-ELM-L2"]
        missing, missing_problems = load_spec_policies(
            store, _tiny_spec(designs=("OS-ELM-L2", "DQN")))
        assert sorted(missing) == ["OS-ELM-L2"]
        assert len(missing_problems) == 1
        assert "no trained policy for design 'DQN'" in missing_problems[0]

    def test_load_spec_policies_rejects_unknown_design(self, tmp_path):
        from repro.serving import load_spec_policies

        policies, problems = load_spec_policies(
            ArtifactStore(tmp_path), _tiny_spec(), designs=["Nope"])
        assert policies == {}
        assert len(problems) == 1 and "not part of spec" in problems[0]


class TestStoreEnumeration:
    def test_list_runs_empty_store(self, tmp_path):
        assert ArtifactStore(tmp_path).list_runs() == []

    def test_list_runs_and_trials(self, tmp_path):
        spec_a = _tiny_spec(name="enum-a")
        spec_b = _tiny_spec(name="enum-b", designs=("ELM",))
        run(spec_a, backend="serial", out=str(tmp_path))
        run(spec_b, backend="serial", out=str(tmp_path))
        store = ArtifactStore(tmp_path)
        listed = store.list_runs()
        assert sorted(listed) == sorted([spec_a.spec_hash, spec_b.spec_hash])
        trials = store.list_trials(spec_a.spec_hash)
        assert trials == [trial_key(spec_a.tasks()[0])]
        # every listed trial must actually resolve to a stored artifact
        assert (store.trial_dir(trials[0]) / "trial.json").exists()

    def test_list_runs_excludes_telemetry_records(self, tmp_path):
        spec = _tiny_spec(name="enum-telemetry")
        run(spec, backend="serial", out=str(tmp_path))
        runs_dir = tmp_path / "runs"
        (runs_dir / f"{spec.spec_hash}.telemetry.json").write_text("{}")
        assert ArtifactStore(tmp_path).list_runs() == [spec.spec_hash]

    def test_list_trials_unknown_hash_raises(self, tmp_path):
        with pytest.raises(KeyError, match="no run record for spec hash"):
            ArtifactStore(tmp_path).list_trials("deadbeef")
