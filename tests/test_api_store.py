"""Tests for the artifact store: content addressing, round-trips, resume."""

import numpy as np
import pytest

from repro.api import ArtifactStore, Budget, ExperimentSpec, run, trial_key
from repro.api.store import trial_descriptor
from repro.rl.runner import train_agent


def _tiny_spec(name="store-spec", **overrides):
    defaults = dict(designs=("OS-ELM-L2",), hidden_sizes=(8,),
                    budget=Budget(max_episodes=4))
    defaults.update(overrides)
    return ExperimentSpec(name=name, **defaults)


def _train(task):
    return train_agent(task.make_agent(), config=task.training,
                       n_hidden=task.n_hidden)


class TestTrialKey:
    def test_deterministic_and_sensitive(self):
        spec = _tiny_spec()
        task = spec.tasks()[0]
        assert trial_key(task) == trial_key(spec.tasks()[0])
        other = _tiny_spec().with_budget(max_episodes=5).tasks()[0]
        assert trial_key(task) != trial_key(other)
        descriptor = trial_descriptor(task)
        assert descriptor["design"] == "OS-ELM-L2"
        assert descriptor["training"]["max_episodes"] == 4

    def test_key_is_spec_independent(self):
        """Two specs expanding to the same trial share one artifact."""
        a = _tiny_spec(name="a").tasks()[0]
        b = _tiny_spec(name="b").tasks()[0]
        assert trial_key(a) == trial_key(b)


class TestStoreRoundTrip:
    def test_save_load_preserves_result(self, tmp_path):
        store = ArtifactStore(tmp_path)
        task = _tiny_spec().tasks()[0]
        result = _train(task)
        assert not store.has_trial(task)
        store.save_trial(task, result, backend_used="serial")
        assert store.has_trial(task)
        loaded, backend_used = store.load_trial(task)
        assert backend_used == "serial"
        assert loaded.design == result.design
        assert loaded.solved == result.solved
        assert loaded.episodes == result.episodes
        assert loaded.episodes_to_solve == result.episodes_to_solve
        assert loaded.seed == result.seed
        assert loaded.weight_resets == result.weight_resets
        np.testing.assert_array_equal(loaded.curve.steps, result.curve.steps)
        np.testing.assert_array_equal(loaded.curve.moving_average,
                                      result.curve.moving_average)
        assert loaded.breakdown.counts == result.breakdown.counts
        assert loaded.breakdown.seconds == pytest.approx(result.breakdown.seconds)
        # summary_rows-visible fields must survive the round trip exactly.
        assert loaded.curve.final_average() == result.curve.final_average()

    def test_missing_trial_reads_as_none(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert store.load_trial(_tiny_spec().tasks()[0]) is None

    def test_corrupt_artifact_reads_as_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        task = _tiny_spec().tasks()[0]
        store.save_trial(task, _train(task), backend_used="serial")
        (store.trial_dir(trial_key(task)) / "trial.json").write_text("{broken")
        assert store.load_trial(task) is None

    @pytest.mark.parametrize("content", [b"", b"PK\x03\x04truncated-archive"])
    def test_partial_npz_reads_as_miss(self, tmp_path, content):
        """A run killed mid-save leaves an empty/truncated curve.npz; later
        runs must treat that trial as a miss, not crash in the cache pass."""
        store = ArtifactStore(tmp_path)
        task = _tiny_spec().tasks()[0]
        store.save_trial(task, _train(task), backend_used="serial")
        (store.trial_dir(trial_key(task)) / "curve.npz").write_bytes(content)
        assert store.load_trial(task) is None
        # and the engine reruns it rather than aborting
        report = run(_tiny_spec(), backend="serial", store=store)
        assert report.executed_count == 1


class TestEngineCaching:
    def test_cache_miss_then_hit(self, tmp_path):
        spec = _tiny_spec()
        first = run(spec, backend="serial", out=str(tmp_path))
        assert first.cached_count == 0 and first.executed_count == 1
        second = run(spec, backend="serial", out=str(tmp_path))
        assert second.cached_count == 1 and second.executed_count == 0
        assert second.summary_rows() == first.summary_rows()
        # run-level record exists for `repro report`
        store = ArtifactStore(tmp_path)
        record = store.load_run(spec.spec_hash)
        assert record is not None
        assert record["trial_keys"] == [trial_key(spec.tasks()[0])]

    def test_cache_shared_across_backends(self, tmp_path):
        spec = _tiny_spec()
        run(spec, backend="vectorized", out=str(tmp_path))
        cached = run(spec, backend="serial", out=str(tmp_path))
        assert cached.cached_count == 1
        assert cached.trials[0].backend_used == "lockstep"   # provenance preserved

    def test_no_resume_forces_rerun(self, tmp_path):
        spec = _tiny_spec()
        run(spec, backend="serial", out=str(tmp_path))
        forced = run(spec, backend="serial", out=str(tmp_path), resume=False)
        assert forced.cached_count == 0 and forced.executed_count == 1

    def test_cache_only_raises_on_missing(self, tmp_path):
        with pytest.raises(RuntimeError, match="not in the artifact store"):
            run(_tiny_spec(), backend="serial", out=str(tmp_path), cache_only=True)

    def test_overlapping_spec_reuses_trials(self, tmp_path):
        """A wider spec whose grid contains an already-run cell must reuse it."""
        run(_tiny_spec(), backend="serial", out=str(tmp_path))
        wider = _tiny_spec(name="wider", designs=("OS-ELM-L2", "ELM"))
        report = run(wider, backend="serial", out=str(tmp_path))
        cached = {record.task.design: record.cached for record in report.trials}
        assert cached == {"OS-ELM-L2": True, "ELM": False}

    def test_no_store_runs_pure(self, tmp_path, monkeypatch):
        """Without out/store nothing may be written to the default root."""
        monkeypatch.chdir(tmp_path)
        report = run(_tiny_spec(), backend="serial")
        assert report.store_root is None
        assert not (tmp_path / "artifacts").exists()
