"""Tests of the serving stack: batcher, protocol edge cases, byte-identity.

Protocol edge cases drive :class:`~repro.serving.server.PolicyServer` with
raw scripted sockets in the style of ``test_distributed_broker.py`` —
malformed frames, oversized frames, disconnects mid-batch, swaps racing
in-flight requests — so every fault a client fleet can throw at the daemon
is exercised deterministically.  The byte-identity tests pin the paper-level
contract: an action served through pickling + micro-batching equals the
same observation evaluated offline with ``agent.act(state, explore=False)``,
for every agent family and after a hot swap.
"""

import pickle
import socket
import struct
import threading

import numpy as np
import pytest

from repro import Trainer, TrainingConfig, make_design
from repro.distributed import protocol
from repro.distributed.broker import SweepBroker
from repro.parallel.sweep import SweepSpec
from repro.serving import (
    BatcherClosed,
    MicroBatcher,
    PolicyClient,
    PolicyServer,
    ServingError,
    WeightPushCallback,
)

DESIGNS = ("ELM", "OS-ELM", "DQN")


def _trained_agent(design, *, seed=7, episodes=2):
    agent = make_design(design, n_hidden=8, seed=seed)
    Trainer().fit(agent, config=TrainingConfig(max_episodes=episodes))
    return agent


@pytest.fixture(scope="module")
def agents():
    """One briefly-trained agent per family, shared across the module."""
    return {design: _trained_agent(design) for design in DESIGNS}


def _probe_states(agent, n=16, seed=0):
    rng = np.random.default_rng(seed)
    return rng.uniform(-1.0, 1.0, size=(n, agent.config.n_states))


def _offline_greedy(agent, states):
    return np.array([agent.act(state, explore=False) for state in states],
                    dtype=np.int64)


def _clone(agent):
    """A pickle round trip — exactly what loading from a store produces."""
    return pickle.loads(pickle.dumps(agent))


# ---------------------------------------------------------------------- batcher
class TestMicroBatcher:
    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError, match="max_batch"):
            MicroBatcher(lambda d, s: s, max_batch=0)
        with pytest.raises(ValueError, match="max_wait_us"):
            MicroBatcher(lambda d, s: s, max_wait_us=-1)

    def test_fills_to_max_batch(self):
        sizes = []

        def dispatch(design, states):
            sizes.append(len(states))
            return np.zeros(len(states), dtype=np.int64)

        batcher = MicroBatcher(dispatch, max_batch=4, max_wait_us=500_000)
        # Queue everything before the dispatcher starts: it must drain the
        # backlog as two full batches, without waiting out max_wait_us.
        pending = [batcher.submit("d", np.zeros(4)) for _ in range(8)]
        with batcher:
            assert [request.result(timeout=5.0) for request in pending] == [0] * 8
        assert sizes == [4, 4]

    def test_max_wait_flushes_partial_batch(self):
        sizes = []

        def dispatch(design, states):
            sizes.append(len(states))
            return np.arange(len(states))

        batcher = MicroBatcher(dispatch, max_batch=64, max_wait_us=10_000)
        pending = [batcher.submit("d", np.zeros(4)) for _ in range(3)]
        with batcher:
            assert [request.result(timeout=5.0) for request in pending] == [0, 1, 2]
        assert sizes == [3]

    def test_head_of_line_order_across_designs(self):
        order = []

        def dispatch(design, states):
            order.append(design)
            return np.zeros(len(states), dtype=np.int64)

        batcher = MicroBatcher(dispatch, max_batch=1, max_wait_us=0)
        first = batcher.submit("a", np.zeros(2))
        second = batcher.submit("b", np.zeros(2))
        with batcher:
            first.result(timeout=5.0)
            second.result(timeout=5.0)
        assert order == ["a", "b"]

    def test_dispatch_error_fails_whole_batch(self):
        def dispatch(design, states):
            raise RuntimeError("model exploded")

        batcher = MicroBatcher(dispatch, max_batch=4, max_wait_us=1000)
        pending = [batcher.submit("d", np.zeros(4)) for _ in range(2)]
        with batcher:
            for request in pending:
                with pytest.raises(RuntimeError, match="model exploded"):
                    request.result(timeout=5.0)

    def test_close_fails_pending_and_rejects_new(self):
        batcher = MicroBatcher(lambda d, s: np.zeros(len(s)))
        # Never started: the request can only be failed by close().
        request = batcher.submit("d", np.zeros(4))
        batcher.close()
        with pytest.raises(BatcherClosed):
            request.result(timeout=1.0)
        with pytest.raises(BatcherClosed):
            batcher.submit("d", np.zeros(4))


# ---------------------------------------------------------------- scripted sockets
class _RawClient:
    """A bare socket speaking the serving protocol, one frame at a time."""

    def __init__(self, server, client_id="raw", handshake=True):
        host, port = server.address
        self.sock = socket.create_connection((host, port), timeout=5.0)
        if handshake:
            protocol.send_message(self.sock, protocol.HELLO, client_id)
            kind, info = protocol.recv_message(self.sock)
            assert kind == protocol.WELCOME
            self.welcome_info = info

    def send(self, kind, payload=None):
        protocol.send_message(self.sock, kind, payload)

    def recv(self):
        return protocol.recv_message(self.sock)

    def sendall(self, raw):
        self.sock.sendall(raw)

    def assert_closed_by_peer(self, timeout=5.0):
        self.sock.settimeout(timeout)
        try:
            assert self.sock.recv(1) == b""
        except ConnectionError:
            pass  # reset is as closed as it gets

    def close(self):
        self.sock.close()


class TestServerProtocol:
    def test_rejects_empty_and_batchless_policies(self):
        with pytest.raises(ValueError, match="nothing to serve"):
            PolicyServer({})
        with pytest.raises(TypeError, match="act_batch"):
            PolicyServer({"OS-ELM": object()})

    def test_welcome_advertises_serving(self, agents):
        with PolicyServer({"OS-ELM": _clone(agents["OS-ELM"])}) as server:
            raw = _RawClient(server)
            assert raw.welcome_info["serving"] is True
            assert raw.welcome_info["designs"] == ["OS-ELM"]
            assert raw.welcome_info["max_batch"] == 8
            raw.close()

    def test_unknown_design_errors_but_connection_survives(self, agents):
        agent = agents["OS-ELM"]
        state = _probe_states(agent, 1)[0]
        with PolicyServer({"OS-ELM": _clone(agent)}) as server:
            with PolicyClient(*server.address) as client:
                with pytest.raises(ServingError, match="unknown design"):
                    client.act(state, design="nope")
                # The ERROR reply must not poison the connection.
                assert client.act(state) == agent.act(state, explore=False)

    def test_wrong_state_width_rejected(self, agents):
        with PolicyServer({"OS-ELM": _clone(agents["OS-ELM"])}) as server:
            with PolicyClient(*server.address) as client:
                with pytest.raises(ServingError, match="state dims"):
                    client.act([0.0, 1.0])

    def test_unknown_frame_kind_gets_error_reply(self, agents):
        with PolicyServer({"OS-ELM": _clone(agents["OS-ELM"])}) as server:
            raw = _RawClient(server)
            raw.send("frobnicate", None)
            kind, reason = raw.recv()
            assert kind == protocol.ERROR
            assert "unknown frame kind" in reason
            raw.close()

    def test_malformed_frame_closes_connection_server_survives(self, agents):
        agent = agents["OS-ELM"]
        with PolicyServer({"OS-ELM": _clone(agent)}) as server:
            raw = _RawClient(server)
            body = pickle.dumps("not a (kind, payload) tuple")
            raw.sendall(struct.pack(">Q", len(body)) + body)
            raw.assert_closed_by_peer()
            raw.close()
            # The daemon must shrug the bad client off and keep serving.
            state = _probe_states(agent, 1)[0]
            with PolicyClient(*server.address) as client:
                assert client.act(state) == agent.act(state, explore=False)

    def test_oversized_frame_refused_before_allocation(self, agents):
        agent = agents["OS-ELM"]
        with PolicyServer({"OS-ELM": _clone(agent)},
                          max_frame_bytes=2048) as server:
            raw = _RawClient(server)
            raw.sendall(struct.pack(">Q", 1 << 30))  # hostile length header
            raw.assert_closed_by_peer()
            raw.close()
            state = _probe_states(agent, 1)[0]
            with PolicyClient(*server.address) as client:
                assert client.act(state) == agent.act(state, explore=False)

    def test_client_disconnect_mid_batch_spares_other_clients(self, agents):
        agent = agents["OS-ELM"]
        state = _probe_states(agent, 2, seed=3)
        with PolicyServer({"OS-ELM": _clone(agent)},
                          max_batch=4, max_wait_us=200_000) as server:
            doomed = _RawClient(server, "doomed")
            doomed.send(protocol.ACT, ("OS-ELM", state[0]))
            doomed.close()  # dies with its request still queued
            with PolicyClient(*server.address) as survivor:
                # Lands in the same (partial) batch as the dead client's
                # request; the batch must dispatch and this reply arrive.
                assert survivor.act(state[1]) == agent.act(state[1],
                                                           explore=False)

    def test_swap_during_inflight_act_drops_nothing(self, agents):
        old = agents["OS-ELM"]
        new = make_design("OS-ELM", n_hidden=8, seed=321)
        state = _probe_states(old, 1, seed=4)[0]
        with PolicyServer({"OS-ELM": _clone(old)},
                          max_batch=8, max_wait_us=500_000) as server:
            inflight = _RawClient(server, "inflight")
            inflight.send(protocol.ACT, ("OS-ELM", state))
            with PolicyClient(*server.address) as pusher:
                info = pusher.swap(_clone(new))
                assert info == {"design": "OS-ELM", "generation": 1}
            # The queued request must still be answered — and the swap lands
            # before its batch's max_wait deadline, so on the new weights.
            kind, action = inflight.recv()
            assert kind == protocol.ACTION
            assert action == new.act(state, explore=False)
            inflight.close()

    def test_swap_rejects_non_agent_blob(self, agents):
        agent = agents["OS-ELM"]
        with PolicyServer({"OS-ELM": _clone(agent)}) as server:
            with PolicyClient(*server.address) as client:
                with pytest.raises(ServingError, match="swap rejected"):
                    client.swap("not an agent")
                state = _probe_states(agent, 1)[0]
                assert client.act(state) == agent.act(state, explore=False)

    def test_swap_can_add_a_new_design(self, agents):
        extra = make_design("ELM", n_hidden=8, seed=11)
        with PolicyServer({"OS-ELM": _clone(agents["OS-ELM"])}) as server:
            with PolicyClient(*server.address) as client:
                info = client.swap(_clone(extra), design="ELM")
                assert info["generation"] == 1
                state = _probe_states(extra, 1, seed=9)[0]
                assert client.act(state, design="ELM") == extra.act(
                    state, explore=False)
            assert server.designs() == ["ELM", "OS-ELM"]

    def test_stats_reports_latency_percentiles(self, agents):
        agent = agents["OS-ELM"]
        with PolicyServer({"OS-ELM": _clone(agent)},
                          max_batch=4, max_wait_us=1000) as server:
            with PolicyClient(*server.address) as client:
                client.act_many(_probe_states(agent, 12))
                stats = client.stats()
        assert stats["repro_version"]
        assert stats["designs"]["OS-ELM"]["requests"] == 12
        assert stats["designs"]["OS-ELM"]["generation"] == 0
        latency = stats["metrics"]["histograms"]["serving.request_latency_seconds"]
        assert latency["count"] == 12
        for percentile in ("p50", "p90", "p99"):
            assert latency[percentile] >= 0.0
        batches = stats["metrics"]["histograms"]["serving.batch_size"]
        assert batches["count"] >= 3  # 12 requests through max_batch=4

    def test_client_refuses_a_sweep_broker_peer(self):
        spec = SweepSpec(designs=("OS-ELM-L2",), n_seeds=1, n_hidden=8,
                         training=TrainingConfig(max_episodes=3), root_seed=99)
        with SweepBroker(spec.tasks()) as broker:
            host, port = broker.address
            with pytest.raises(ServingError, match="not a policy server"):
                PolicyClient(host, port)


# ------------------------------------------------------------------ byte identity
class TestByteIdentity:
    @pytest.mark.parametrize("design", DESIGNS)
    def test_served_equals_offline_greedy(self, agents, design):
        agent = agents[design]
        states = _probe_states(agent, 24, seed=1)
        offline = _offline_greedy(agent, states)
        with PolicyServer({design: _clone(agent)},
                          max_batch=8, max_wait_us=2000) as server:
            results = {}

            def drive(name):
                with PolicyClient(*server.address) as client:
                    results[name] = client.act_many(states)

            threads = [threading.Thread(target=drive, args=(i,))
                       for i in range(2)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30.0)
        assert set(results) == {0, 1}
        for served in results.values():
            np.testing.assert_array_equal(served, offline)

    @pytest.mark.parametrize("design", DESIGNS)
    def test_byte_identity_survives_hot_swap(self, agents, design):
        fresh = make_design(design, n_hidden=8, seed=555)
        states = _probe_states(fresh, 16, seed=2)
        with PolicyServer({design: _clone(agents[design])},
                          max_batch=8, max_wait_us=2000) as server:
            with PolicyClient(*server.address) as client:
                info = client.swap(_clone(fresh))
                assert info["generation"] == 1
                np.testing.assert_array_equal(client.act_many(states),
                                              _offline_greedy(fresh, states))


# ------------------------------------------------------------------ weight pushes
class TestWeightPushCallback:
    def test_rejects_bad_cadence(self):
        with pytest.raises(ValueError, match="every"):
            WeightPushCallback("127.0.0.1:1", every=0)

    def test_pushes_land_and_final_weights_serve(self):
        stale = make_design("OS-ELM", n_hidden=8, seed=5)
        with PolicyServer({"OS-ELM": stale}) as server:
            host, port = server.address
            callback = WeightPushCallback(f"{host}:{port}", every=2,
                                          strict=True)
            trained = make_design("OS-ELM", n_hidden=8, seed=6)
            Trainer(callbacks=[callback]).fit(
                trained, config=TrainingConfig(max_episodes=5))
            callback.close()
            # episodes 2 and 4, plus the unconditional end-of-training push
            assert callback.pushes == 3
            assert callback.failed_pushes == 0
            states = _probe_states(trained, 12, seed=8)
            with PolicyClient(host, port) as client:
                np.testing.assert_array_equal(
                    client.act_many(states), _offline_greedy(trained, states))
                generation = client.stats()["designs"]["OS-ELM"]["generation"]
        assert generation == callback.pushes

    def test_lenient_mode_survives_a_dead_server(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
        probe.close()  # nothing listens here any more
        callback = WeightPushCallback(("127.0.0.1", dead_port), every=1)
        agent = make_design("OS-ELM", n_hidden=8, seed=13)
        result = Trainer(callbacks=[callback]).fit(
            agent, config=TrainingConfig(max_episodes=2))
        assert result.episodes == 2  # training survived every failed push
        assert callback.pushes == 0
        assert callback.failed_pushes >= 1

    def test_strict_mode_raises(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
        probe.close()
        callback = WeightPushCallback(("127.0.0.1", dead_port), every=1,
                                      strict=True)
        with pytest.raises(ServingError, match="cannot reach policy server"):
            Trainer(callbacks=[callback]).fit(
                make_design("OS-ELM", n_hidden=8, seed=13),
                config=TrainingConfig(max_episodes=2))


# ---------------------------------------------------------------- frame size guard
class TestFrameSizeGuard:
    def _framed_roundtrip(self, payload, **recv_kwargs):
        left, right = socket.socketpair()
        try:
            protocol.send_message(left, "kind", payload)
            return protocol.recv_message(right, **recv_kwargs)
        finally:
            left.close()
            right.close()

    def test_explicit_limit_enforced(self):
        with pytest.raises(protocol.ProtocolError, match="exceeds the 1024-byte"):
            self._framed_roundtrip(b"x" * 100_000, max_frame_bytes=1024)
        kind, payload = self._framed_roundtrip(b"small", max_frame_bytes=1024)
        assert (kind, payload) == ("kind", b"small")

    def test_nonpositive_limit_rejected(self):
        with pytest.raises(ValueError, match="must be positive"):
            self._framed_roundtrip(b"x", max_frame_bytes=0)

    def test_env_var_overrides_default(self, monkeypatch):
        monkeypatch.setenv(protocol.MAX_FRAME_ENV_VAR, "64")
        assert protocol.default_max_frame_bytes() == 64
        with pytest.raises(protocol.ProtocolError, match="64-byte limit"):
            self._framed_roundtrip(b"y" * 4096)

    @pytest.mark.parametrize("bad", ["not-a-number", "0", "-5"])
    def test_env_var_validated(self, monkeypatch, bad):
        monkeypatch.setenv(protocol.MAX_FRAME_ENV_VAR, bad)
        with pytest.raises(ValueError, match="positive integer"):
            protocol.default_max_frame_bytes()

    def test_env_var_unset_gives_default(self, monkeypatch):
        monkeypatch.delenv(protocol.MAX_FRAME_ENV_VAR, raising=False)
        assert protocol.default_max_frame_bytes() == protocol.MAX_FRAME_BYTES

    def test_broker_drops_oversized_frames(self):
        spec = SweepSpec(designs=("OS-ELM-L2",), n_seeds=1, n_hidden=8,
                         training=TrainingConfig(max_episodes=3), root_seed=99)
        with SweepBroker(spec.tasks(), max_frame_bytes=256) as broker:
            host, port = broker.address
            hostile = socket.create_connection((host, port), timeout=5.0)
            protocol.send_message(hostile, protocol.HELLO, "x" * 4096)
            hostile.settimeout(5.0)
            try:
                assert hostile.recv(1) == b""
            except ConnectionError:
                pass
            hostile.close()
            # A well-behaved worker still registers afterwards.
            polite = socket.create_connection((host, port), timeout=5.0)
            protocol.send_message(polite, protocol.HELLO, "polite")
            kind, info = protocol.recv_message(polite)
            assert kind == protocol.WELCOME and info["tasks"] == 1
            polite.close()
