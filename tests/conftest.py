"""Shared pytest fixtures for the reproduction test suite."""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

# Allow running the tests from a source checkout without installation.
_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator shared by numerical tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_regression_data(rng):
    """A small smooth regression problem solvable by a single-hidden-layer network."""
    x = rng.uniform(-1.0, 1.0, size=(200, 3))
    y = (np.sin(x[:, 0]) + 0.5 * x[:, 1] ** 2 - 0.3 * x[:, 2]).reshape(-1, 1)
    return x, y


@pytest.fixture
def cartpole_env():
    from repro.envs import make

    return make("CartPole-v0", seed=0)


@pytest.fixture
def tiny_agent_config():
    from repro.core.agents import AgentConfig

    return AgentConfig(n_states=4, n_actions=2, n_hidden=16, seed=0)
