"""Tests for repro.utils.seeding."""

import numpy as np
import pytest

from repro.utils.seeding import (
    SeedSequenceFactory,
    derive_rng,
    np_random,
    spawn_seeds,
    stable_hash,
)


class TestSpawnSeeds:
    def test_deterministic_for_root(self):
        assert spawn_seeds(1234, 5) == spawn_seeds(1234, 5)

    def test_prefix_stable(self):
        # Growing n must not change the already-derived seeds.
        assert spawn_seeds(7, 8)[:3] == spawn_seeds(7, 3)

    def test_pairwise_distinct(self):
        seeds = spawn_seeds(0, 64)
        assert len(set(seeds)) == 64

    def test_different_roots_differ(self):
        assert spawn_seeds(1, 4) != spawn_seeds(2, 4)

    def test_bounds_and_types(self):
        for seed in spawn_seeds(99, 16):
            assert isinstance(seed, int)
            assert 0 <= seed < 2**63

    def test_zero_children(self):
        assert spawn_seeds(1, 0) == []

    def test_none_root_gives_fresh_entropy(self):
        first = spawn_seeds(None, 3)
        assert len(first) == 3 and all(s >= 0 for s in first)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            spawn_seeds(1, -1)
        with pytest.raises(ValueError):
            spawn_seeds(-5, 2)

    def test_seeds_feed_np_random(self):
        for seed in spawn_seeds(3, 4):
            rng, used = np_random(seed)
            assert used == seed
            rng.random()


class TestStableHash:
    def test_known_fnv1a_vector(self):
        # FNV-1a 32-bit of the empty string is the offset basis.
        assert stable_hash("") == 0x811C9DC5

    def test_deterministic_and_distinct(self):
        assert stable_hash("OS-ELM") == stable_hash("OS-ELM")
        assert stable_hash("OS-ELM") != stable_hash("DQN")

    def test_32_bit_range(self):
        for key in ("ELM", "OS-ELM-L2-Lipschitz", "FPGA"):
            assert 0 <= stable_hash(key) < 2**32


class TestNpRandom:
    def test_same_seed_same_stream(self):
        rng_a, _ = np_random(7)
        rng_b, _ = np_random(7)
        assert np.array_equal(rng_a.integers(0, 100, 10), rng_b.integers(0, 100, 10))

    def test_different_seeds_differ(self):
        rng_a, _ = np_random(1)
        rng_b, _ = np_random(2)
        assert not np.array_equal(rng_a.integers(0, 1000, 20), rng_b.integers(0, 1000, 20))

    def test_returns_seed_used(self):
        _, seed = np_random(42)
        assert seed == 42

    def test_none_seed_generates_entropy(self):
        rng, seed = np_random(None)
        assert isinstance(rng, np.random.Generator)
        assert seed >= 0

    def test_existing_generator_passthrough(self):
        original = np.random.default_rng(3)
        rng, seed = np_random(original)
        assert rng is original
        assert seed == -1

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            np_random(-1)

    def test_bad_type_rejected(self):
        with pytest.raises(TypeError):
            np_random("seed")  # type: ignore[arg-type]

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(99)
        rng, seed = np_random(seq)
        assert isinstance(rng, np.random.Generator)
        assert seed == 99


class TestDeriveRng:
    def test_child_is_independent_generator(self):
        parent = np.random.default_rng(0)
        child = derive_rng(parent, "component")
        assert isinstance(child, np.random.Generator)
        assert child is not parent

    def test_accepts_mixed_keys(self):
        parent = np.random.default_rng(0)
        child = derive_rng(parent, "env", 3)
        assert isinstance(child, np.random.Generator)


class TestSeedSequenceFactory:
    def test_same_keys_same_stream(self):
        factory = SeedSequenceFactory(100)
        a = factory.generator("agent", trial=0).integers(0, 1000, 5)
        b = SeedSequenceFactory(100).generator("agent", trial=0).integers(0, 1000, 5)
        assert np.array_equal(a, b)

    def test_different_trials_differ(self):
        factory = SeedSequenceFactory(100)
        a = factory.generator("agent", trial=0).integers(0, 10_000, 10)
        b = factory.generator("agent", trial=1).integers(0, 10_000, 10)
        assert not np.array_equal(a, b)

    def test_different_components_differ(self):
        factory = SeedSequenceFactory(100)
        a = factory.generator("env", trial=0).integers(0, 10_000, 10)
        b = factory.generator("agent", trial=0).integers(0, 10_000, 10)
        assert not np.array_equal(a, b)

    def test_trial_generators_count(self):
        factory = SeedSequenceFactory(5)
        gens = list(factory.trial_generators("agent", 4))
        assert len(gens) == 4

    def test_trial_generators_negative_rejected(self):
        factory = SeedSequenceFactory(5)
        with pytest.raises(ValueError):
            list(factory.trial_generators("agent", -1))

    def test_negative_root_seed_rejected(self):
        with pytest.raises(ValueError):
            SeedSequenceFactory(-3)

    def test_string_keys_stable_across_processes(self):
        # FNV-based hashing must not depend on PYTHONHASHSEED.
        a = SeedSequenceFactory(1).sequence("alpha", trial=2)
        b = SeedSequenceFactory(1).sequence("alpha", trial=2)
        assert a.spawn_key == b.spawn_key
