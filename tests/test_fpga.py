"""Tests for the FPGA platform models (device, resources, timing, core, accelerator)."""

import numpy as np
import pytest

from repro.core.os_elm import OSELM
from repro.core.regularization import RegularizationConfig
from repro.fpga.accelerator import FPGAAcceleratedOSELM
from repro.fpga.core_sim import FixedPointOSELMCore
from repro.fpga.device import PYNQ_Z1, XC7Z020, FPGADevice, ResourceVector
from repro.fpga.platform import PynqZ1Platform
from repro.fpga.resources import (
    TABLE3_PAPER_VALUES,
    OSELMCoreResourceModel,
)
from repro.fpga.timing import CortexA9LatencyModel, FPGACoreLatencyModel
from repro.fixedpoint.qformat import QFormat
from repro.utils.exceptions import NotFittedError, ResourceExhaustedError


class TestDevice:
    def test_xc7z020_capacities(self):
        cap = XC7Z020.capacity
        assert cap.bram_36k == 140
        assert cap.dsp == 220
        assert cap.ff == 106_400
        assert cap.lut == 53_200

    def test_pynq_z1_table1(self):
        summary = PYNQ_Z1.summary()
        assert "650MHz" in summary["CPU"]
        assert summary["RAM"] == "512MB"
        assert PYNQ_Z1.pl_clock_mhz == 125.0

    def test_resource_vector_arithmetic(self):
        a = ResourceVector(bram_36k=10, dsp=2, ff=100, lut=200)
        b = ResourceVector(bram_36k=5, dsp=2, ff=50, lut=100)
        total = a + b
        assert total.bram_36k == 15 and total.lut == 300
        assert a.scaled(2.0).ff == 200

    def test_utilization_percentages(self):
        used = ResourceVector(bram_36k=70, dsp=22, ff=10_640, lut=5_320)
        util = XC7Z020.utilization(used)
        assert util["BRAM"] == pytest.approx(50.0)
        assert util["DSP"] == pytest.approx(10.0)
        assert util["FF"] == pytest.approx(10.0)
        assert util["LUT"] == pytest.approx(10.0)

    def test_check_fit_raises(self):
        huge = ResourceVector(bram_36k=1000)
        with pytest.raises(ResourceExhaustedError) as excinfo:
            XC7Z020.check_fit(huge)
        assert excinfo.value.resource == "BRAM"

    def test_fits_in(self):
        assert ResourceVector(bram_36k=1).fits_in(XC7Z020.capacity)
        assert not ResourceVector(dsp=10_000).fits_in(XC7Z020.capacity)


class TestResourceModel:
    def test_table3_shape_reproduced(self):
        """Qualitative Table 3 behaviour: BRAM grows quadratically, DSP constant,
        192 units fit, 256 units do not."""
        model = OSELMCoreResourceModel()
        report = model.report()
        by_units = {row.n_hidden: row for row in report.rows}
        assert by_units[32].fits and by_units[64].fits
        assert by_units[128].fits and by_units[192].fits
        assert not by_units[256].fits
        assert report.largest_fitting == 192
        # DSP utilization is independent of the hidden-layer size.
        dsp = {row.utilization_percent["DSP"] for row in report.rows}
        assert len(dsp) == 1
        # BRAM grows superlinearly.
        assert by_units[128].utilization_percent["BRAM"] > 3 * by_units[64].utilization_percent["BRAM"]

    def test_bram_matches_paper_within_tolerance(self):
        model = OSELMCoreResourceModel()
        for n_hidden, paper in TABLE3_PAPER_VALUES.items():
            if paper is None:
                continue
            modelled = model.utilization(n_hidden).utilization_percent["BRAM"]
            assert modelled == pytest.approx(paper["BRAM"], rel=0.15), n_hidden

    def test_dsp_matches_paper(self):
        model = OSELMCoreResourceModel()
        assert model.utilization(64).utilization_percent["DSP"] == pytest.approx(1.82, abs=0.05)

    def test_check_fit_raises_for_256(self):
        with pytest.raises(ResourceExhaustedError):
            OSELMCoreResourceModel().check_fit(256)

    def test_max_hidden_units(self):
        max_units = OSELMCoreResourceModel().max_hidden_units()
        assert 192 <= max_units < 256

    def test_wider_words_use_more_bram(self):
        narrow = OSELMCoreResourceModel(qformat=QFormat(16, 8))
        wide = OSELMCoreResourceModel(qformat=QFormat(32, 20))
        assert narrow.bram_blocks(128) < wide.bram_blocks(128)

    def test_invalid_hidden_size(self):
        with pytest.raises(ValueError):
            OSELMCoreResourceModel().bram_bits(0)

    def test_report_row_lookup(self):
        report = OSELMCoreResourceModel().report()
        assert report.row_for(64).n_hidden == 64
        with pytest.raises(KeyError):
            report.row_for(1000)


class TestTimingModels:
    def test_fpga_seq_train_cycles_scale_quadratically(self):
        model = FPGACoreLatencyModel()
        c64 = model.seq_train_cycles(64)
        c128 = model.seq_train_cycles(128)
        assert 3.0 < c128 / c64 < 4.5

    def test_fpga_predict_cycles_scale_linearly(self):
        model = FPGACoreLatencyModel()
        assert model.predict_cycles(5, 128) < 3 * model.predict_cycles(5, 64)

    def test_fpga_latency_uses_clock(self):
        fast = FPGACoreLatencyModel(clock_hz=250e6, invocation_overhead_seconds=0.0)
        slow = FPGACoreLatencyModel(clock_hz=125e6, invocation_overhead_seconds=0.0)
        assert fast.seq_train(64).seconds == pytest.approx(slow.seq_train(64).seconds / 2)

    def test_cpu_seq_train_slower_than_fpga(self):
        """The central claim of Figure 5: the PL core beats the Cortex-A9 on seq_train."""
        cpu = CortexA9LatencyModel()
        pl = FPGACoreLatencyModel()
        for n_hidden in (32, 64, 128, 192):
            assert cpu.seq_train(n_hidden).seconds > pl.seq_train(n_hidden).seconds

    def test_dqn_train_slower_than_oselm_seq_train(self):
        """DQN's backprop minibatch step costs more than one OS-ELM update (same width)."""
        cpu = CortexA9LatencyModel()
        for n_hidden in (32, 64, 128):
            assert cpu.dqn_train(4, n_hidden, 2).seconds > cpu.seq_train(n_hidden).seconds

    def test_latency_increases_with_hidden_size(self):
        cpu = CortexA9LatencyModel()
        times = [cpu.seq_train(n).seconds for n in (32, 64, 128, 192)]
        assert times == sorted(times)

    def test_throughput_helper(self):
        model = FPGACoreLatencyModel()
        assert model.throughput_updates_per_second(64) == pytest.approx(
            1.0 / model.seq_train(64).seconds)

    def test_cycles_summary(self):
        summary = FPGACoreLatencyModel().cycles_summary(64)
        assert set(summary) == {"predict", "seq_train"}
        assert summary["seq_train"] > summary["predict"]

    def test_validation(self):
        with pytest.raises(ValueError):
            CortexA9LatencyModel(clock_hz=0)
        with pytest.raises(ValueError):
            FPGACoreLatencyModel(clock_hz=-1)


class TestFixedPointCore:
    def _loaded_core(self, rng, n_hidden=16):
        core = FixedPointOSELMCore(5, n_hidden, 1)
        alpha = rng.uniform(0, 1, size=(5, n_hidden))
        bias = rng.uniform(0, 1, size=n_hidden)
        core.load_weights(alpha, bias)
        p0 = np.eye(n_hidden) * 0.5
        beta0 = rng.uniform(-0.5, 0.5, size=(n_hidden, 1))
        core.load_initial_state(p0, beta0)
        return core, alpha, bias, p0, beta0

    def test_requires_initialisation(self, rng):
        core = FixedPointOSELMCore(5, 8, 1)
        with pytest.raises(NotFittedError):
            core.predict(np.zeros(5))
        core.load_weights(rng.uniform(0, 1, (5, 8)), rng.uniform(0, 1, 8))
        with pytest.raises(NotFittedError):
            core.seq_train(np.zeros(5), np.zeros(1))

    def test_shape_validation(self, rng):
        core = FixedPointOSELMCore(5, 8, 1)
        with pytest.raises(ValueError):
            core.load_weights(np.zeros((4, 8)), np.zeros(8))
        core.load_weights(rng.uniform(0, 1, (5, 8)), rng.uniform(0, 1, 8))
        with pytest.raises(ValueError):
            core.load_initial_state(np.eye(7), np.zeros((8, 1)))

    def test_predict_matches_float_reference(self, rng):
        core, alpha, bias, p0, beta0 = self._loaded_core(rng)
        x = rng.uniform(-1, 1, size=5)
        expected = np.maximum(x @ alpha + bias, 0.0) @ beta0
        result = core.predict(x)
        np.testing.assert_allclose(result, expected.reshape(1, 1), atol=1e-4)

    def test_seq_train_tracks_float_oselm(self, rng):
        """The fixed-point update must stay close to the float OS-ELM recursion."""
        n_hidden = 16
        reference = OSELM(5, n_hidden, 1, regularization=RegularizationConfig.l2(0.5), seed=0)
        x0 = rng.uniform(-1, 1, size=(n_hidden, 5))
        t0 = rng.uniform(-1, 1, size=(n_hidden, 1))
        reference.init_train(x0, t0)
        core = FixedPointOSELMCore(5, n_hidden, 1)
        core.load_weights(reference.alpha, reference.bias)
        core.load_initial_state(reference.p_matrix, reference.beta)
        for _ in range(50):
            x = rng.uniform(-1, 1, size=5)
            t = rng.uniform(-1, 1, size=1)
            reference.seq_train_step(x, float(t[0]))
            core.seq_train(x, t)
        report = core.compare_against(reference.beta, reference.p_matrix)
        assert report["beta_max_abs_error"] < 1e-2
        assert report["p_max_abs_error"] < 1e-2
        assert core.seq_train_invocations == 50

    def test_memory_words(self):
        core = FixedPointOSELMCore(5, 32, 1)
        words = core.memory_words()
        assert words["P"] == 32 * 32
        assert words["alpha"] == 5 * 32

    def test_state_as_float_keys(self, rng):
        core, *_ = self._loaded_core(rng)
        state = core.state_as_float()
        assert set(state) == {"alpha", "bias", "beta", "P"}


class TestFPGAAcceleratedOSELM:
    def test_resource_check_at_construction(self):
        with pytest.raises(ResourceExhaustedError):
            FPGAAcceleratedOSELM(5, 256, 1, seed=0)
        # Skipping the check allows what-if sweeps.
        model = FPGAAcceleratedOSELM(5, 256, 1, seed=0, check_resources=False)
        assert model.n_hidden == 256

    def test_predict_and_partial_fit_flow(self, rng):
        model = FPGAAcceleratedOSELM(5, 16, 1,
                                     regularization=RegularizationConfig.l2_lipschitz(0.5),
                                     seed=0)
        with pytest.raises(NotFittedError):
            model.predict(np.zeros((1, 5)))
        x0 = rng.uniform(-1, 1, size=(16, 5))
        t0 = rng.uniform(-1, 1, size=(16, 1))
        model.init_train(x0, t0)
        assert model.is_fitted and model.is_initialized
        pred = model.predict(rng.uniform(-1, 1, size=(3, 5)))
        assert pred.shape == (3, 1)
        model.seq_train_step(rng.uniform(-1, 1, size=5), 0.3)
        assert model.modelled_time.counts.get("seq_train", 0) == 1
        assert model.modelled_time.counts.get("predict_seq", 0) == 3
        assert model.modelled_time.seconds.get("init_train", 0) > 0

    def test_tracks_quantization_divergence(self, rng):
        model = FPGAAcceleratedOSELM(5, 16, 1, seed=0,
                                     regularization=RegularizationConfig.l2(0.5))
        model.init_train(rng.uniform(-1, 1, (16, 5)), rng.uniform(-1, 1, (16, 1)))
        report = model.quantization_report()
        assert report["beta_max_abs_error"] <= 1e-3

    def test_speedup_vs_cpu_positive(self):
        model = FPGAAcceleratedOSELM(5, 64, 1, seed=0)
        assert model.modelled_speedup_vs_cpu() > 1.0

    def test_resource_utilization_dict(self):
        model = FPGAAcceleratedOSELM(5, 64, 1, seed=0)
        util = model.resource_utilization()
        assert set(util) == {"BRAM", "DSP", "FF", "LUT"}

    def test_reset_reinitialises_core(self, rng):
        model = FPGAAcceleratedOSELM(5, 16, 1, seed=0)
        model.init_train(rng.uniform(-1, 1, (16, 5)), rng.uniform(-1, 1, (16, 1)))
        model.reset()
        assert not model.is_initialized


class TestPynqZ1Platform:
    def test_operation_latency_routing(self):
        platform = PynqZ1Platform()
        # seq_train on the FPGA design uses the PL model, on software designs the CPU model.
        fpga_latency = platform.operation_latency("FPGA", "seq_train", n_hidden=64)
        sw_latency = platform.operation_latency("OS-ELM-L2-Lipschitz", "seq_train", n_hidden=64)
        assert fpga_latency < sw_latency
        # init_train always runs on the CPU (Figure 3 partitioning).
        assert platform.operation_latency("FPGA", "init_train", n_hidden=64) == \
            platform.operation_latency("OS-ELM-L2", "init_train", n_hidden=64)

    def test_dqn_operations(self):
        platform = PynqZ1Platform()
        assert platform.operation_latency("DQN", "train_DQN", n_hidden=64) > \
            platform.operation_latency("DQN", "predict_1", n_hidden=64)
        assert platform.operation_latency("DQN", "predict_32", n_hidden=64) > \
            platform.operation_latency("DQN", "predict_1", n_hidden=64)

    def test_unknown_operation(self):
        with pytest.raises(ValueError):
            PynqZ1Platform().operation_latency("DQN", "backprop", n_hidden=64)

    def test_project_breakdown(self):
        platform = PynqZ1Platform()
        counts = {"seq_train": 1000, "predict_seq": 4000, "init_train": 1, "predict_init": 128}
        projected = platform.project_breakdown("OS-ELM-L2-Lipschitz", counts, n_hidden=64)
        assert projected.total() > 0
        assert projected.counts["seq_train"] == 1000
        # seq_train dominates for the OS-ELM designs, as Figure 5 reports.
        assert projected.fraction("seq_train") > 0.4

    def test_project_skips_zero_counts(self):
        platform = PynqZ1Platform()
        projected = platform.project_breakdown("DQN", {"train_DQN": 0}, n_hidden=32)
        assert projected.total() == 0.0

    def test_speedup_helper(self):
        platform = PynqZ1Platform()
        base = platform.project_breakdown("DQN", {"train_DQN": 100, "predict_1": 100},
                                          n_hidden=64)
        fast = platform.project_breakdown("FPGA", {"seq_train": 100, "predict_seq": 100},
                                          n_hidden=64)
        assert platform.speedup(base, fast) > 1.0

    def test_clock_consistency_with_spec(self):
        platform = PynqZ1Platform()
        assert platform.cpu.clock_hz == pytest.approx(PYNQ_Z1.cpu_clock_hz)
        assert platform.pl.clock_hz == pytest.approx(PYNQ_Z1.pl_clock_hz)

    def test_device_capacity_object(self):
        assert isinstance(XC7Z020, FPGADevice)
        assert XC7Z020.default_clock_hz == pytest.approx(125e6)
