"""Tests for AsyncVectorEnv: trajectory equivalence and pipeline contract."""

import numpy as np
import pytest

from repro.parallel import (
    AsyncVectorEnv,
    EnvFactory,
    SubprocVectorEnv,
    SyncVectorEnv,
    make_vector,
    pipelined_rollout,
)


def _factories(num_envs, seed=50):
    return [EnvFactory("CartPole-v0", seed=seed + i) for i in range(num_envs)]


class TestAsyncEquivalence:
    def test_matches_sync_step_for_step(self):
        """step_async + step_wait must replay SyncVectorEnv exactly."""
        fns = _factories(3)
        with SyncVectorEnv(fns) as sync_env, AsyncVectorEnv(fns) as async_env:
            obs_sync, _ = sync_env.reset()
            obs_async, _ = async_env.reset()
            np.testing.assert_array_equal(obs_sync, obs_async)
            rng = np.random.default_rng(7)
            for _ in range(150):
                actions = rng.integers(0, 2, size=3)
                expected = sync_env.step(actions)
                async_env.step_async(actions)
                observed = async_env.step_wait()
                np.testing.assert_array_equal(expected.observations,
                                              observed.observations)
                np.testing.assert_array_equal(expected.terminated,
                                              observed.terminated)
                np.testing.assert_array_equal(expected.truncated,
                                              observed.truncated)
                np.testing.assert_array_equal(expected.rewards, observed.rewards)

    def test_matches_subproc_with_message_batching(self):
        """steps_per_message composes: async(k) == subproc(k) frame-for-frame."""
        fns = _factories(2, seed=99)
        with SubprocVectorEnv(fns, steps_per_message=4) as subproc_env, \
                AsyncVectorEnv(fns, steps_per_message=4) as async_env:
            subproc_env.reset(seed=11)
            async_env.reset(seed=11)
            rng = np.random.default_rng(3)
            for _ in range(60):
                actions = rng.integers(0, 2, size=2)
                expected = subproc_env.step(actions)
                observed = async_env.step(actions)   # sync-flavoured entry point
                np.testing.assert_array_equal(expected.observations,
                                              observed.observations)
                assert ([i.get("frames") for i in expected.infos]
                        == [i.get("frames") for i in observed.infos])

    def test_make_vector_builds_async(self):
        venv = make_vector("CartPole-v0", 2, seed=4, vectorization="async")
        try:
            assert isinstance(venv, AsyncVectorEnv)
            observations, _ = venv.reset()
            assert observations.shape == (2, 4)
        finally:
            venv.close()


class TestAsyncProtocol:
    def test_step_wait_without_async_raises(self):
        with AsyncVectorEnv(_factories(2)) as venv:
            venv.reset()
            with pytest.raises(RuntimeError, match="no step in flight"):
                venv.step_wait()

    def test_double_step_async_raises(self):
        with AsyncVectorEnv(_factories(2)) as venv:
            venv.reset()
            venv.step_async(np.zeros(2, dtype=int))
            with pytest.raises(RuntimeError, match="already in flight"):
                venv.step_async(np.zeros(2, dtype=int))
            venv.step_wait()

    def test_reset_drains_inflight_step(self):
        fns = _factories(2)
        with AsyncVectorEnv(fns) as venv:
            venv.reset(seed=8)
            venv.step_async(np.ones(2, dtype=int))
            observations, _ = venv.reset(seed=8)    # stale step discarded
            assert not venv.step_pending
            with SyncVectorEnv(fns) as reference:
                expected, _ = reference.reset(seed=8)
            np.testing.assert_array_equal(observations, expected)

    def test_close_with_inflight_step(self):
        venv = AsyncVectorEnv(_factories(2))
        venv.reset()
        venv.step_async(np.zeros(2, dtype=int))
        venv.close()                                 # must not deadlock
        assert venv._closed


class TestPipelinedRollout:
    def test_counters_match_a_manual_loop(self):
        fns = _factories(3, seed=21)
        rng = np.random.default_rng(5)
        policy_actions = [rng.integers(0, 2, size=3) for _ in range(40)]

        def replay_policy(queue):
            queue = iter(queue)
            return lambda observations: next(queue)

        with SyncVectorEnv(fns) as reference:
            reference.reset(seed=2)
            expected_steps = 0
            expected_episodes = 0
            for actions in policy_actions:
                result = reference.step(actions)
                expected_steps += 3
                expected_episodes += int(result.dones.sum())

        with AsyncVectorEnv(fns) as venv:
            stats = pipelined_rollout(venv, replay_policy(policy_actions),
                                      len(policy_actions), seed=2)
        assert stats["env_steps"] == expected_steps
        assert stats["episodes"] == expected_episodes

    def test_update_sees_every_transition_in_order(self):
        seen = []

        def update(observations, actions, result):
            seen.append((observations.copy(), actions.copy(),
                         result.observations.copy()))

        fns = _factories(2, seed=77)
        rng = np.random.default_rng(9)
        with AsyncVectorEnv(fns) as venv:
            pipelined_rollout(venv,
                              lambda obs: rng.integers(0, 2, size=len(obs)),
                              25, update=update, seed=1)
        assert len(seen) == 25
        # Transitions chain: the update's next-obs is the following update's obs.
        for (_, _, next_obs), (obs, _, _) in zip(seen, seen[1:]):
            np.testing.assert_array_equal(next_obs, obs)

    def test_rejects_non_positive_steps(self):
        with AsyncVectorEnv(_factories(1)) as venv:
            with pytest.raises(ValueError, match="n_steps"):
                pipelined_rollout(venv, lambda obs: np.zeros(1, dtype=int), 0)
