"""Tests for the training runner, schedules, recording and experiment harnesses."""

import numpy as np
import pytest

from repro.core.designs import make_design
from repro.experiments.execution_time import (
    PAPER_EXECUTION_TIMES,
    PAPER_SPEEDUPS,
    ExecutionTimeExperiment,
    ExecutionTimeResult,
    fpga_breakdown_rows,
)
from repro.experiments.reporting import (
    format_table,
    paper_comparison_rows,
    relative_error,
    rows_to_csv,
)
from repro.experiments.resource_table import compare_with_paper, render_table3, resource_table
from repro.experiments.training_curve import (
    TrainingCurveExperiment,
    stability_classification,
)
from repro.rl.recording import EpisodeRecord, TrainingCurve, TrainingResult
from repro.rl.runner import TrainingConfig, evaluate_agent, train_agent
from repro.rl.schedule import ConstantSchedule, ExponentialDecaySchedule, LinearSchedule
from repro.utils.timer import TimeBreakdown


class TestSchedules:
    def test_constant(self):
        schedule = ConstantSchedule(0.7)
        assert schedule(0) == 0.7 and schedule(10_000) == 0.7

    def test_linear(self):
        schedule = LinearSchedule(1.0, 0.0, duration=10)
        assert schedule(0) == 1.0
        assert schedule(5) == pytest.approx(0.5)
        assert schedule(50) == 0.0

    def test_exponential(self):
        schedule = ExponentialDecaySchedule(1.0, 0.1, decay=0.9)
        assert schedule(0) == pytest.approx(1.0)
        assert schedule(100) == pytest.approx(0.1, abs=1e-3)

    def test_negative_step_rejected(self):
        with pytest.raises(ValueError):
            ConstantSchedule(1.0)(-1)

    def test_invalid_decay(self):
        with pytest.raises(ValueError):
            ExponentialDecaySchedule(1.0, 0.0, decay=1.5)


class TestRecording:
    def test_training_curve_series(self):
        curve = TrainingCurve()
        for episode in range(1, 6):
            curve.append(EpisodeRecord(episode, episode * 10, 0.0, episode * 5.0))
        assert len(curve) == 5
        np.testing.assert_array_equal(curve.episodes, [1, 2, 3, 4, 5])
        np.testing.assert_array_equal(curve.steps, [10, 20, 30, 40, 50])
        assert curve.final_average(2) == pytest.approx(45.0)
        assert set(curve.as_dict()) == {"episodes", "steps", "moving_average"}

    def test_training_result_summary(self):
        curve = TrainingCurve([EpisodeRecord(1, 100, 1.0, 100.0)])
        breakdown = TimeBreakdown()
        breakdown.add("seq_train", 1.0, 10)
        result = TrainingResult("OS-ELM", 64, True, 1, 1, 2.0, curve, breakdown)
        summary = result.summary()
        assert summary["design"] == "OS-ELM"
        assert summary["solved"] is True
        assert summary["operation_counts"]["seq_train"] == 10
        assert result.completed


class TestRunner:
    def test_training_config_validation(self):
        with pytest.raises(ValueError):
            TrainingConfig(max_episodes=0)
        with pytest.raises(ValueError):
            TrainingConfig(solved_window=0)

    def test_train_agent_returns_result(self):
        agent = make_design("OS-ELM-L2", n_hidden=16, seed=1)
        config = TrainingConfig(max_episodes=12, solved_threshold=500.0, seed=1)
        result = train_agent(agent, config=config)
        assert result.episodes == 12
        assert not result.solved
        assert len(result.curve) == 12
        assert result.n_hidden == 16
        assert result.breakdown.total() > 0
        assert all(record.steps >= 1 for record in result.curve.records)

    def test_train_agent_stops_when_solved(self):
        # A trivially low threshold is reached as soon as the window fills.
        agent = make_design("OS-ELM-L2", n_hidden=8, seed=0)
        config = TrainingConfig(max_episodes=200, solved_threshold=2.0, solved_window=5, seed=0)
        result = train_agent(agent, config=config)
        assert result.solved
        assert result.episodes_to_solve == result.episodes < 200

    def test_train_agent_dqn(self):
        agent = make_design("DQN", n_hidden=16, seed=0, min_replay_size=32)
        config = TrainingConfig(max_episodes=6, seed=0)
        result = train_agent(agent, config=config)
        assert result.design == "DQN"
        assert result.breakdown.counts.get("predict_1", 0) > 0

    def test_train_agent_accepts_env_instance(self, cartpole_env):
        agent = make_design("OS-ELM", n_hidden=8, seed=0)
        result = train_agent(agent, cartpole_env, config=TrainingConfig(max_episodes=3, seed=0))
        assert result.episodes == 3

    def test_reward_shaping_bounds(self):
        """With shaping on, every shaped return lies in [-1, +1]."""
        agent = make_design("OS-ELM-L2", n_hidden=8, seed=0)
        config = TrainingConfig(max_episodes=10, reward_shaping=True, seed=0)
        result = train_agent(agent, config=config)
        assert all(-1.0 <= r.shaped_return <= 1.0 for r in result.curve.records)

    def test_record_lipschitz_option(self):
        agent = make_design("OS-ELM-L2", n_hidden=8, seed=0)
        config = TrainingConfig(max_episodes=5, record_lipschitz=True, seed=0)
        result = train_agent(agent, config=config)
        assert np.isfinite(result.curve.lipschitz_bounds[-1])

    def test_evaluate_agent(self):
        agent = make_design("OS-ELM-L2", n_hidden=8, seed=0)
        train_agent(agent, config=TrainingConfig(max_episodes=5, seed=0))
        lengths = evaluate_agent(agent, n_episodes=3, config=TrainingConfig(seed=1))
        assert lengths.shape == (3,)
        assert np.all(lengths >= 1)

    def test_evaluate_agent_invalid(self):
        agent = make_design("OS-ELM-L2", n_hidden=8, seed=0)
        with pytest.raises(ValueError):
            evaluate_agent(agent, n_episodes=0)


class TestReporting:
    def test_format_table_alignment(self):
        rows = [{"design": "DQN", "seconds": 3232.54}, {"design": "FPGA", "seconds": 6.88}]
        text = format_table(rows, title="Figure 5")
        assert "Figure 5" in text
        assert "DQN" in text and "FPGA" in text
        assert "3232.54" in text

    def test_format_table_empty(self):
        assert "(empty)" in format_table([])

    def test_format_table_none_cells(self):
        text = format_table([{"a": None, "b": True}])
        assert "-" in text and "yes" in text

    def test_rows_to_csv(self):
        csv_text = rows_to_csv([{"a": 1, "b": "x,y"}])
        assert csv_text.splitlines()[0] == "a,b"
        assert '"x,y"' in csv_text

    def test_relative_error(self):
        assert relative_error(110.0, 100.0) == pytest.approx(0.1)
        assert relative_error(1.0, 0.0) == float("inf")
        assert relative_error(0.0, 0.0) == 0.0

    def test_paper_comparison_rows(self):
        rows = paper_comparison_rows({"speedup": 20.0}, {"speedup": 29.76})
        assert rows[0]["paper"] == 29.76
        assert rows[0]["relative_error"] == pytest.approx(abs(20 - 29.76) / 29.76)


class TestResourceTableExperiment:
    def test_resource_table_rows(self):
        report = resource_table()
        assert [row.n_hidden for row in report.rows] == [32, 64, 128, 192, 256]

    def test_render_table3_contains_all_rows(self):
        text = render_table3()
        for units in ("32", "64", "128", "192", "256"):
            assert units in text

    def test_compare_with_paper_structure(self):
        rows = compare_with_paper()
        units_covered = {row["Units"] for row in rows}
        assert units_covered == {32, 64, 128, 192, 256}
        # the 256-unit entry compares the fits flag and must agree with the paper
        unfit = [row for row in rows if row["Units"] == 256][0]
        assert unfit["agreement"] is True
        # BRAM errors stay within 15 % of the paper's numbers
        bram_rows = [row for row in rows if row.get("resource") == "BRAM"]
        assert all(row["relative_error"] <= 0.15 for row in bram_rows)


class TestTrainingCurveExperiment:
    def test_ci_scale_run(self):
        experiment = TrainingCurveExperiment.ci_scale(
            designs=("OS-ELM-L2",), hidden_sizes=(16,), max_episodes=8)
        collected = experiment.run()
        assert ("OS-ELM-L2", 16) in collected.results
        rows = collected.summary_rows()
        assert rows[0]["episodes"] <= 8
        series = collected.curve_series("OS-ELM-L2", 16)
        assert len(series["steps"]) == rows[0]["episodes"]
        assert "Figure 4" in collected.render()

    def test_paper_scale_configuration(self):
        experiment = TrainingCurveExperiment.paper_scale()
        assert experiment.training.max_episodes == 50_000
        assert experiment.training.solved_threshold == 195.0

    def test_stability_classification(self):
        solved = TrainingResult("X", 32, True, 10, 10, 1.0, TrainingCurve(), TimeBreakdown())
        assert stability_classification(solved) == "solved"
        # A collapsing curve: rises then falls sharply (the paper's plain OS-ELM behaviour).
        curve = TrainingCurve()
        for episode in range(1, 201):
            steps = 150 if episode < 100 else 10
            avg = 150.0 if episode < 100 else max(10.0, 150 - (episode - 100) * 2)
            curve.append(EpisodeRecord(episode, steps, 0.0, avg))
        collapsed = TrainingResult("OS-ELM", 32, False, 200, None, 1.0, curve, TimeBreakdown())
        assert stability_classification(collapsed) == "collapsed"
        flat = TrainingCurve()
        for episode in range(1, 50):
            flat.append(EpisodeRecord(episode, 10, 0.0, 10.0))
        dull = TrainingResult("OS-ELM", 32, False, 49, None, 1.0, flat, TimeBreakdown())
        assert stability_classification(dull) == "not_learning"


class TestExecutionTimeExperiment:
    def test_paper_reference_tables_complete(self):
        assert set(PAPER_EXECUTION_TIMES) == {32, 64, 128, 192}
        assert PAPER_SPEEDUPS[64]["OS-ELM-L2-Lipschitz"] == 29.76
        assert PAPER_SPEEDUPS[64]["FPGA"] == 126.06

    def test_ci_scale_run_and_speedups(self):
        experiment = ExecutionTimeExperiment.ci_scale(
            designs=("OS-ELM-L2", "DQN", "FPGA"), hidden_sizes=(16,), max_episodes=6)
        result = experiment.run()
        assert isinstance(result, ExecutionTimeResult)
        for design in ("OS-ELM-L2", "DQN", "FPGA"):
            timing = result.get(design, 16)
            assert timing.modelled_total > 0
            assert timing.measured_total > 0
        # The proposed designs complete the same (small) workload faster than DQN
        # under the platform latency model.
        assert result.speedup_vs_dqn("OS-ELM-L2", 16) > 1.0
        assert result.speedup_vs_dqn("FPGA", 16) > 1.0
        # FPGA is at least as fast as the software OS-ELM design.
        assert result.get("FPGA", 16).modelled_total <= result.get("OS-ELM-L2", 16).modelled_total
        rows = result.summary_rows()
        assert len(rows) == 3
        assert "Figure 5" in result.render()

    def test_breakdown_rows(self):
        experiment = ExecutionTimeExperiment.ci_scale(designs=("FPGA",), hidden_sizes=(16,),
                                                      max_episodes=4)
        result = experiment.run()
        rows = result.breakdown_rows("FPGA", 16)
        assert sum(row["fraction"] for row in rows) == pytest.approx(1.0, abs=0.01)
        fig6 = fpga_breakdown_rows(result, hidden_sizes=(16,))
        assert fig6[0]["n_hidden"] == 16
        assert fig6[0]["total_seconds"] > 0

    def test_speedup_missing_design_returns_none(self):
        assert ExecutionTimeResult().speedup_vs_dqn("FPGA", 64) is None
