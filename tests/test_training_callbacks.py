"""Callback lifecycle, progress streaming and action-repeat stepping."""

import io

import numpy as np
import pytest

from repro.core.designs import make_design
from repro.training import (
    Callback,
    CallbackList,
    MetricsRecorder,
    ProgressCallback,
    Trainer,
    TrainingConfig,
)


class _Recorder(Callback):
    """Logs every hook invocation in order."""

    def __init__(self):
        self.events = []

    def on_train_start(self, run):
        self.events.append(("train_start", run.mode))

    def on_episode_start(self, trial):
        self.events.append(("episode_start", trial.index, trial.episode))

    def on_step(self, trial, event):
        self.events.append(("step", trial.index, event.done))

    def on_episode_end(self, trial, record):
        self.events.append(("episode_end", trial.index, record.episode))

    def on_train_end(self, run, results):
        self.events.append(("train_end", len(results)))


class TestCallbackLifecycle:
    def test_serial_hook_ordering_and_counts(self):
        recorder = _Recorder()
        agent = make_design("OS-ELM-L2", n_hidden=8, seed=3)
        result = Trainer(callbacks=[recorder]).fit(
            agent, config=TrainingConfig(max_episodes=3, seed=3))
        kinds = [event[0] for event in recorder.events]
        assert kinds[0] == "train_start"
        assert kinds[-1] == "train_end"
        assert kinds.count("episode_start") == kinds.count("episode_end") \
            == result.episodes == 3
        # One on_step per decision; with action_repeat=1 that is one per env
        # step, so the step-event count equals the summed curve lengths.
        assert kinds.count("step") == int(result.curve.steps.sum())
        # episode_end(k) always follows episode_start(k)
        starts = [e[2] for e in recorder.events if e[0] == "episode_start"]
        ends = [e[2] for e in recorder.events if e[0] == "episode_end"]
        assert starts == ends == [1, 2, 3]

    def test_lockstep_fires_identical_hooks(self):
        recorder = _Recorder()
        agents = [make_design("OS-ELM-L2", n_hidden=8, seed=s) for s in (0, 1)]
        configs = [TrainingConfig(max_episodes=2, seed=s) for s in (0, 1)]
        results = Trainer(callbacks=[recorder]).fit_lockstep(agents, configs)
        kinds = [event[0] for event in recorder.events]
        assert kinds[0] == "train_start"
        assert recorder.events[0] == ("train_start", "lockstep")
        assert kinds[-1] == "train_end"
        assert kinds.count("episode_end") == sum(r.episodes for r in results)
        total_steps = sum(int(r.curve.steps.sum()) for r in results)
        assert kinds.count("step") == total_steps

    def test_user_supplied_metrics_recorder_is_reused(self):
        metrics = MetricsRecorder()
        trainer = Trainer(callbacks=[metrics])
        assert trainer.recorder is metrics
        agent = make_design("ELM", n_hidden=8, seed=0)
        result = trainer.fit(agent, config=TrainingConfig(max_episodes=2, seed=0))
        assert metrics.curve(0) is result.curve

    def test_callback_list_rejects_non_callbacks(self):
        with pytest.raises(TypeError):
            CallbackList([object()])

    def test_progress_callback_streams_lines(self):
        stream = io.StringIO()
        agent = make_design("OS-ELM-L2", n_hidden=8, seed=1)
        Trainer(callbacks=[ProgressCallback(2, stream=stream)]).fit(
            agent, config=TrainingConfig(max_episodes=4, seed=1))
        out = stream.getvalue()
        assert "episode 2:" in out and "episode 4:" in out
        assert "episode 1:" not in out        # every 2nd episode only
        assert "done:" in out                 # train-end summary

    def test_progress_callback_validates_interval(self):
        with pytest.raises(ValueError):
            ProgressCallback(0)


class TestActionRepeat:
    def test_config_validates_action_repeat(self):
        with pytest.raises(ValueError):
            TrainingConfig(action_repeat=0)

    def test_serial_frame_skip_reduces_decisions_not_steps(self):
        seed = 11
        base = Trainer().fit(make_design("OS-ELM-L2", n_hidden=8, seed=seed),
                             config=TrainingConfig(max_episodes=3, seed=seed))
        skipped_agent = make_design("OS-ELM-L2", n_hidden=8, seed=seed)
        skipped = Trainer().fit(
            skipped_agent,
            config=TrainingConfig(max_episodes=3, seed=seed, action_repeat=3))
        # Steps per episode count real env steps either way...
        assert skipped.curve.steps.sum() > 0
        # ...but the agent only observed one transition per decision point.
        assert skipped_agent.global_step < int(skipped.curve.steps.sum())
        # action_repeat=1 is the bit-identical default, not merely similar.
        assert base.curve.steps.sum() == Trainer().fit(
            make_design("OS-ELM-L2", n_hidden=8, seed=seed),
            config=TrainingConfig(max_episodes=3, seed=seed,
                                  action_repeat=1)).curve.steps.sum()

    def test_lockstep_frame_skip_uses_subproc_and_matches_serial(self):
        """action_repeat on the lock-step driver auto-builds a
        SubprocVectorEnv(steps_per_message=k) — the frame-skip batching
        finally driven from a real training loop — and replays the serial
        frame-skip run bit-for-bit."""
        seeds = (4, 5)
        configs = [TrainingConfig(max_episodes=2, seed=s, action_repeat=2)
                   for s in seeds]
        serial = [Trainer().fit(make_design("OS-ELM-L2", n_hidden=8, seed=s),
                                config=c) for s, c in zip(seeds, configs)]
        agents = [make_design("OS-ELM-L2", n_hidden=8, seed=s) for s in seeds]
        lockstep = Trainer().fit_lockstep(agents, configs, strategy="generic")
        for serial_result, lockstep_result in zip(serial, lockstep):
            np.testing.assert_array_equal(serial_result.curve.steps,
                                          lockstep_result.curve.steps)

    def test_lockstep_frame_skip_rejects_mismatched_venv(self):
        from repro.parallel.vector_env import EnvFactory, SyncVectorEnv

        agents = [make_design("OS-ELM-L2", n_hidden=8, seed=0)]
        configs = [TrainingConfig(max_episodes=2, seed=0, action_repeat=2)]
        venv = SyncVectorEnv([EnvFactory("CartPole-v0", seed=0)])
        with pytest.raises(ValueError, match="steps_per_message"):
            Trainer().fit_lockstep(agents, configs, venv=venv)
        venv.close()

    def test_mixed_action_repeat_rejected_in_lockstep(self):
        agents = [make_design("OS-ELM-L2", n_hidden=8, seed=s) for s in (0, 1)]
        configs = [TrainingConfig(max_episodes=2, seed=0, action_repeat=1),
                   TrainingConfig(max_episodes=2, seed=1, action_repeat=2)]
        with pytest.raises(ValueError, match="action_repeat"):
            Trainer().fit_lockstep(agents, configs)
