"""Unit tests of the shared retry policy (`repro.utils.retry`).

The policy is the single source of backoff truth for every network edge
(worker reconnect, fleet clients, serving client, weight pushes), so its
schedule is pinned exactly: deterministic, capped, deadline-bounded.
"""

import pytest

from repro.utils.retry import (
    DEFAULT_RETRY_ON,
    RetryError,
    RetryPolicy,
)


class _FakeTime:
    """Deterministic sleep/now pair: sleeping advances the clock."""

    def __init__(self):
        self.now_value = 0.0
        self.sleeps = []

    def sleep(self, seconds):
        self.sleeps.append(seconds)
        self.now_value += seconds

    def now(self):
        return self.now_value


class TestRetryPolicy:
    def test_schedule_is_capped_exponential(self):
        policy = RetryPolicy(max_attempts=6, base_delay=0.2, multiplier=2.0,
                             max_delay=1.0)
        assert policy.delays() == (0.2, 0.4, 0.8, 1.0, 1.0)

    def test_delay_for_huge_index_does_not_overflow(self):
        policy = RetryPolicy(max_attempts=5, base_delay=0.1, max_delay=30.0)
        assert policy.delay_for(10_000) == 30.0

    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="multiplier"):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError, match="max_delay"):
            RetryPolicy(base_delay=2.0, max_delay=1.0)
        with pytest.raises(ValueError, match="deadline"):
            RetryPolicy(deadline=0.0)
        with pytest.raises(ValueError, match="retry_index"):
            RetryPolicy().delay_for(-1)

    def test_call_retries_then_succeeds(self):
        fake = _FakeTime()
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise ConnectionResetError("down")
            return "up"

        policy = RetryPolicy(max_attempts=5, base_delay=0.2, max_delay=5.0)
        assert policy.call(flaky, sleep=fake.sleep, now=fake.now) == "up"
        assert len(attempts) == 3
        assert fake.sleeps == [0.2, 0.4]

    def test_call_exhausts_into_retry_error(self):
        fake = _FakeTime()

        def always_down():
            raise ConnectionRefusedError("nope")

        policy = RetryPolicy(max_attempts=3, base_delay=0.1)
        with pytest.raises(RetryError) as caught:
            policy.call(always_down, sleep=fake.sleep, now=fake.now)
        assert caught.value.attempts == 3
        assert isinstance(caught.value.last_error, ConnectionRefusedError)
        # RetryError is a ConnectionError: existing handlers catch it.
        assert isinstance(caught.value, ConnectionError)
        assert fake.sleeps == [0.1, 0.2]     # two sleeps, three attempts

    def test_call_does_not_retry_unlisted_exceptions(self):
        def broken():
            raise ValueError("a bug, not an outage")

        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=5).call(broken, sleep=lambda _s: None)

    def test_deadline_cuts_schedule_short(self):
        fake = _FakeTime()
        policy = RetryPolicy(max_attempts=100, base_delay=1.0, multiplier=1.0,
                             max_delay=1.0, deadline=2.5)
        clock = policy.clock(sleep=fake.sleep, now=fake.now)
        clock.failed(OSError("1"))           # sleeps to t=1.0
        clock.failed(OSError("2"))           # sleeps to t=2.0
        with pytest.raises(RetryError, match="deadline"):
            clock.failed(OSError("3"))       # 2.0 + 1.0 > 2.5: refused

    def test_one_attempt_means_never_retry(self):
        clock = RetryPolicy(max_attempts=1).clock(sleep=lambda _s: None)
        with pytest.raises(RetryError):
            clock.failed(ConnectionError("first and only"))

    def test_on_retry_hook_sees_each_backoff(self):
        fake = _FakeTime()
        seen = []
        policy = RetryPolicy(max_attempts=3, base_delay=0.5)
        clock = policy.clock(sleep=fake.sleep, now=fake.now)
        clock.failed(OSError("x"),
                     on_retry=lambda n, d, e: seen.append((n, d, str(e))))
        assert seen == [(1, 0.5, "x")]

    def test_default_retry_on_covers_transport_failures(self):
        import socket

        from repro.distributed.protocol import ProtocolError

        for exc in (ConnectionError, ConnectionResetError, OSError,
                    socket.timeout, ProtocolError):
            assert issubclass(exc, DEFAULT_RETRY_ON)
