"""Tests for the declarative spec layer: ExperimentSpec, Budget, registry."""

import json

import pytest

from repro.api import (
    Budget,
    ExperimentSpec,
    get_entry,
    get_spec,
    list_experiments,
    register_alias,
    register_experiment,
    unregister_experiment,
)
from repro.utils.seeding import stable_digest, stable_hash


class TestBudget:
    def test_training_config_materialization(self):
        budget = Budget(max_episodes=10, solved_threshold=50.0, solved_window=5)
        config = budget.training_config(env_id="CartPole-v1", seed=3)
        assert config.env_id == "CartPole-v1"
        assert config.max_episodes == 10
        assert config.solved_threshold == 50.0
        assert config.seed == 3

    def test_round_trip_via_training_config(self):
        budget = Budget(max_episodes=7, reward_shaping=False, record_lipschitz=True)
        config = budget.training_config(env_id="CartPole-v0")
        assert Budget.from_training_config(config) == budget


class TestExperimentSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentSpec(name="")
        with pytest.raises(ValueError):
            ExperimentSpec(name="x", kind="nope")
        with pytest.raises(ValueError):
            ExperimentSpec(name="x", designs=())
        with pytest.raises(ValueError):
            ExperimentSpec(name="x", designs=("NoSuchDesign",))
        with pytest.raises(ValueError):
            ExperimentSpec(name="x", hidden_sizes=())
        with pytest.raises(ValueError):
            ExperimentSpec(name="x", n_seeds=0)
        with pytest.raises(ValueError):
            ExperimentSpec(name="x", designs=("ELM", "ELM"))

    def test_json_round_trip(self):
        spec = ExperimentSpec(
            name="round-trip", kind="execution_time",
            designs=("ELM", "DQN"), hidden_sizes=(16, 32),
            env_ids=("CartPole-v0",), n_seeds=3, seed=5, gamma=0.9,
            budget=Budget(max_episodes=12, solved_threshold=30.0),
            seed_stride=13, seed_mod=991, description="d")
        # Through actual JSON text, not just the dict form.
        rebuilt = ExperimentSpec.from_json(json.loads(json.dumps(spec.to_json())))
        assert rebuilt == spec
        assert rebuilt.spec_hash == spec.spec_hash

    def test_from_json_rejects_unknown_fields(self):
        data = ExperimentSpec(name="x").to_json()
        data["bogus"] = 1
        with pytest.raises(ValueError, match="bogus"):
            ExperimentSpec.from_json(data)

    def test_spec_hash_sensitivity(self):
        base = ExperimentSpec(name="h", designs=("ELM",), hidden_sizes=(16,))
        assert base.spec_hash == ExperimentSpec(name="h", designs=("ELM",),
                                                hidden_sizes=(16,)).spec_hash
        assert base.spec_hash != base.with_budget(max_episodes=9).spec_hash
        assert base.spec_hash != base.with_grid(hidden_sizes=(32,)).spec_hash

    def test_trial_seed_matches_legacy_formula(self):
        """The figure4 spec must derive exactly the seeds
        TrainingCurveExperiment.run_single has always used."""
        spec = get_spec("figure4", scale="paper")
        for design in spec.designs:
            for n_hidden in spec.hidden_sizes:
                legacy = 42 + 17 * n_hidden + stable_hash(design) % 997
                assert spec.trial_seed(design, n_hidden, trial=0) == legacy
        figure5 = get_spec("figure5", scale="paper")
        assert (figure5.trial_seed("DQN", 32)
                == 7 + 13 * 32 + stable_hash("DQN") % 991)

    def test_tasks_expansion(self):
        spec = ExperimentSpec(name="grid", designs=("ELM", "DQN"),
                              hidden_sizes=(8, 16), n_seeds=2,
                              budget=Budget(max_episodes=3))
        tasks = spec.tasks()
        assert len(tasks) == spec.n_trials == 8
        assert len({task.seed for task in tasks}) == 8
        for task in tasks:
            assert task.training.seed == task.seed
            assert task.training.max_episodes == 3
            assert (task.n_states, task.n_actions) == (4, 2)   # CartPole dims

    def test_tasks_pick_up_env_dimensions(self):
        spec = ExperimentSpec(name="mc", designs=("OS-ELM-L2",),
                              hidden_sizes=(8,), env_ids=("MountainCar-v0",),
                              budget=Budget(max_episodes=2, reward_shaping=False))
        task = spec.tasks()[0]
        assert (task.n_states, task.n_actions) == (2, 3)
        agent = task.make_agent()
        assert agent.config.n_states == 2
        assert agent.config.n_actions == 3

    def test_multi_env_seeds_distinct(self):
        spec = ExperimentSpec(name="envs", designs=("OS-ELM-L2",),
                              hidden_sizes=(8,),
                              env_ids=("CartPole-v0", "CartPole-v1"),
                              budget=Budget(max_episodes=2))
        seeds = [task.seed for task in spec.tasks()]
        assert len(set(seeds)) == 2
        # Env 0 keeps the legacy (env-free) formula.
        assert seeds[0] == spec.trial_seed("OS-ELM-L2", 8, 0, env_index=0)

    def test_resource_table_has_no_trials(self):
        spec = get_spec("table3")
        assert spec.kind == "resource_table"
        assert spec.n_trials == 0
        assert spec.tasks() == []


class TestStableDigest:
    def test_stable_and_distinct(self):
        assert stable_digest("abc") == stable_digest("abc")
        assert stable_digest("abc") != stable_digest("abd")
        assert len(stable_digest("abc")) == 16
        assert len(stable_digest("abc", length=8)) == 8
        with pytest.raises(ValueError):
            stable_digest("abc", length=0)


class TestRegistry:
    def test_builtins_present(self):
        names = {entry.name for entry in list_experiments()}
        assert {"figure4", "figure5", "table2", "table3"} <= names

    def test_figure4_variants(self):
        paper = get_spec("figure4", scale="paper")
        ci = get_spec("figure4", scale="ci")
        assert paper.kind == ci.kind == "training_curve"
        assert paper.budget.max_episodes == 50_000
        assert ci.budget.max_episodes == 60
        # Scales share the seed machinery; only declarative fields differ.
        assert (paper.seed, paper.seed_stride, paper.seed_mod) == \
            (ci.seed, ci.seed_stride, ci.seed_mod)

    def test_table2_aliases_figure5(self):
        assert get_entry("table2").alias_of == "figure5"
        assert get_spec("table2") is get_spec("figure5")   # shared cache keys

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="figure4"):
            get_spec("figure99")
        with pytest.raises(ValueError):
            get_entry("figure4").spec("huge")

    def test_register_and_unregister(self):
        spec = ExperimentSpec(name="custom-test-spec", designs=("ELM",),
                              hidden_sizes=(8,), budget=Budget(max_episodes=2))
        try:
            register_experiment(spec)
            assert get_spec("custom-test-spec") == spec
            assert get_spec("custom-test-spec", scale="ci") == spec   # defaults to paper
            with pytest.raises(ValueError, match="already registered"):
                register_experiment(spec)
            register_alias("custom-alias", "custom-test-spec")
            assert get_spec("custom-alias") is spec
        finally:
            unregister_experiment("custom-test-spec")
            unregister_experiment("custom-alias")
        with pytest.raises(KeyError):
            get_spec("custom-test-spec")


class TestPinnedSpecHashes:
    """The built-in specs' content hashes, pinned against the values the
    registry produced before the env-family generalization (env_overrides,
    registry-derived dimensions).  A changed hash silently orphans every
    cached trial of that spec — any diff here must be deliberate."""

    PINNED = {
        ("figure4", "paper"): "b886779f63af43a9",
        ("figure4", "ci"): "4c017fa5d8bf5ce7",
        ("figure5", "paper"): "1d560342ab4157be",
        ("figure5", "ci"): "4bcc172f31dabbe0",
        ("table3", "paper"): "649916b9cab4a3a5",
        ("table3", "ci"): "649916b9cab4a3a5",
    }

    @pytest.mark.parametrize("name,scale", sorted(PINNED))
    def test_builtin_spec_hash_unchanged(self, name, scale):
        assert get_spec(name, scale=scale).spec_hash == self.PINNED[(name, scale)]


class TestSpecMaxWorkers:
    def test_default_is_none_and_round_trips(self):
        spec = ExperimentSpec(name="mw", designs=("ELM",), hidden_sizes=(8,))
        assert spec.max_workers is None
        hinted = ExperimentSpec(name="mw", designs=("ELM",), hidden_sizes=(8,),
                                max_workers=3)
        assert ExperimentSpec.from_json(hinted.to_json()).max_workers == 3
        # Old spec JSONs (no max_workers key) still load.
        legacy = spec.to_json()
        legacy.pop("max_workers")
        assert ExperimentSpec.from_json(legacy).max_workers is None

    def test_validation(self):
        with pytest.raises(ValueError, match="max_workers"):
            ExperimentSpec(name="mw", designs=("ELM",), hidden_sizes=(8,),
                           max_workers=0)

    def test_execution_hint_excluded_from_content_hash(self):
        """max_workers changes how fast a run executes, never what it
        computes — two specs differing only in the hint must share one
        content identity (run record, cached trials)."""
        plain = ExperimentSpec(name="mw", designs=("ELM",), hidden_sizes=(8,))
        hinted = ExperimentSpec(name="mw", designs=("ELM",), hidden_sizes=(8,),
                                max_workers=3)
        assert plain.spec_hash == hinted.spec_hash
        assert "max_workers" not in plain.canonical_json()
        # ...while the round-trippable JSON form still carries it.
        assert hinted.to_json()["max_workers"] == 3

    def test_engine_falls_back_to_spec_hint(self, monkeypatch):
        """run(max_workers=None) must plumb the spec's own hint into the
        SweepRunner; an explicit argument wins over the hint."""
        from repro.api import engine as engine_module
        from repro.api.spec import Budget

        seen = []
        real_runner = engine_module.SweepRunner

        class _SpyRunner(real_runner):
            def __init__(self, spec, **kwargs):
                seen.append(kwargs.get("max_workers"))
                super().__init__(spec, **kwargs)

        monkeypatch.setattr(engine_module, "SweepRunner", _SpyRunner)
        spec = ExperimentSpec(name="mw-hint", designs=("ELM",),
                              hidden_sizes=(8,), budget=Budget(max_episodes=2),
                              max_workers=2)
        engine_module.run(spec, backend="serial")
        engine_module.run(spec, backend="serial", max_workers=5)
        assert seen == [2, 5]
