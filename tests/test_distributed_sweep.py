"""End-to-end tests of the distributed backend: equivalence, faults, resume.

The broker-protocol edge cases live in ``test_distributed_broker.py``;
here real worker processes train real trials, pinning the contract the CI
backend-equivalence job enforces at larger scale: ``backend="distributed"``
replays ``backend="serial"`` bit-for-bit on fixed seeds, survives a worker
being killed mid-sweep, and checkpoints every trial into the artifact
store as it lands.
"""

import time

import numpy as np
import pytest

from repro.api import ArtifactStore, Budget, ExperimentSpec
from repro.api import run as run_experiment
from repro.api.cli import main as cli_main
from repro.distributed import (
    SweepBroker,
    WorkerOptions,
    execute_task,
    run_distributed_sweep,
    spawn_local_workers,
)
from repro.parallel.sweep import SweepRunner, SweepSpec, _run_sweep_task
from repro.rl.runner import TrainingConfig


def _tiny_sweep(n_seeds=3, max_episodes=20):
    return SweepSpec(designs=("OS-ELM-L2-Lipschitz",), n_seeds=n_seeds,
                     n_hidden=16, training=TrainingConfig(max_episodes=max_episodes),
                     root_seed=321)


def _assert_same_trials(reference, sweep):
    assert len(reference) == len(sweep)
    for (task_a, result_a), (task_b, result_b) in zip(reference.entries,
                                                      sweep.entries):
        assert task_a.key() == task_b.key()
        np.testing.assert_array_equal(result_a.curve.steps, result_b.curve.steps)
        assert result_a.solved == result_b.solved
        assert result_a.breakdown.counts == result_b.breakdown.counts


class TestDistributedBackend:
    def test_replays_serial_bit_for_bit(self):
        spec = _tiny_sweep()
        serial = SweepRunner(spec, backend="serial").run()
        distributed = SweepRunner(spec, backend="distributed", max_workers=2).run()
        _assert_same_trials(serial, distributed)
        assert distributed.backend_counts() == {"distributed": 3}

    def test_unknown_backend_still_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            SweepRunner(_tiny_sweep(), backend="cluster")

    def test_single_worker_fleet(self):
        spec = _tiny_sweep(n_seeds=2, max_episodes=5)
        serial = SweepRunner(spec, backend="serial").run()
        distributed = SweepRunner(spec, backend="distributed", max_workers=1).run()
        _assert_same_trials(serial, distributed)

    def test_worker_killed_mid_sweep_still_converges(self):
        """Terminating a worker mid-run must cost wall time, not results."""
        spec = _tiny_sweep(n_seeds=4, max_episodes=40)
        tasks = spec.tasks()
        serial = [_run_sweep_task(task) for task in tasks]

        broker = SweepBroker(tasks, heartbeat_timeout=5.0)
        broker.start()
        host, port = broker.address
        workers = spawn_local_workers(host, port, 2)
        try:
            deadline = time.monotonic() + 30.0
            while (broker.active_connections < 2
                   and time.monotonic() < deadline):
                time.sleep(0.01)          # let the fleet connect + lease tasks
            time.sleep(0.05)
            workers[0].terminate()        # SIGTERM: connection drops mid-trial
            assert broker.join(timeout=60.0), "sweep did not converge"
            results = broker.results()
        finally:
            broker.close()
            for worker in workers:
                worker.join(timeout=5.0)
                if worker.is_alive():
                    worker.kill()
        for serial_result, (dist_result, backend_used) in zip(serial, results):
            assert backend_used == "distributed"
            np.testing.assert_array_equal(serial_result.curve.steps,
                                          dist_result.curve.steps)

    def test_all_workers_dead_raises_instead_of_hanging(self, monkeypatch):
        """A fleet that crashes on arrival is an error, not an infinite wait."""
        import multiprocessing as mp

        from repro.distributed import coordinator

        def spawn_dead_fleet(host, port, n_workers, **kwargs):
            process = mp.get_context().Process(target=time.sleep, args=(0,))
            process.start()
            process.join()                 # exited before serving anything
            return [process]

        monkeypatch.setattr(coordinator, "spawn_local_workers", spawn_dead_fleet)
        tasks = _tiny_sweep(n_seeds=1).tasks()
        with pytest.raises(RuntimeError, match="every local worker exited"):
            coordinator.run_distributed_sweep(tasks, n_workers=1)

    def test_requires_workers_without_bind(self):
        with pytest.raises(ValueError, match="n_workers"):
            run_distributed_sweep(_tiny_sweep(n_seeds=1).tasks(), n_workers=0)


class TestEngineAndStore:
    def _spec(self, **overrides):
        defaults = dict(name="dist-tiny", designs=("OS-ELM-L2",),
                        hidden_sizes=(16,), n_seeds=2,
                        budget=Budget(max_episodes=6))
        defaults.update(overrides)
        return ExperimentSpec(**defaults)

    def test_engine_distributed_matches_serial_csv(self, tmp_path):
        spec = self._spec()
        serial = run_experiment(spec, backend="serial",
                                out=str(tmp_path / "serial"))
        distributed = run_experiment(spec, backend="distributed",
                                     max_workers=2,
                                     out=str(tmp_path / "distributed"))
        assert serial.summary_csv() == distributed.summary_csv()
        assert distributed.backend_counts() == {"distributed": 2}

    def test_broker_checkpoints_every_trial_into_store(self, tmp_path):
        spec = self._spec()
        store = ArtifactStore(tmp_path / "store")
        report = run_experiment(spec, backend="distributed", max_workers=2,
                                store=store)
        assert report.executed_count == 2
        for record in report.trials:
            cached = store.load_trial(record.task)
            assert cached is not None
            _, backend_used = cached
            assert backend_used == "distributed"
        # Resume: the second run must come entirely from the cache pass.
        resumed = run_experiment(spec, backend="distributed", max_workers=2,
                                 store=store)
        assert resumed.executed_count == 0
        assert resumed.cached_count == 2
        assert resumed.summary_csv() == report.summary_csv()

    def test_non_distributed_backends_checkpoint_per_trial_too(self, tmp_path):
        """Every backend streams trials into the store as they finish, with
        the execution path each trial actually took."""
        spec = self._spec(designs=("OS-ELM-L2", "OS-ELM"))  # batched + generic
        store = ArtifactStore(tmp_path / "store")
        report = run_experiment(spec, backend="vectorized", store=store)
        for record in report.trials:
            cached = store.load_trial(record.task)
            assert cached is not None
            _, backend_used = cached
            assert backend_used == record.backend_used
        # Both strategies report "lockstep": the batched fast path for
        # OS-ELM-L2, the generic per-agent strategy for unregularized OS-ELM.
        assert {r.backend_used for r in report.trials} == {"lockstep"}

    def test_store_equipped_worker_answers_from_cache(self, tmp_path):
        store = ArtifactStore(tmp_path / "worker-store")
        task = _tiny_sweep(n_seeds=1, max_episodes=4).tasks()[0]
        fresh, was_cached = execute_task(task, store)
        assert was_cached is False
        again, was_cached = execute_task(task, store)
        assert was_cached is True
        np.testing.assert_array_equal(fresh.curve.steps, again.curve.steps)


class TestCLI:
    def test_run_distributed_workers_flag(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        from repro.utils.serialization import save_json

        save_json(spec_path, self._spec().to_json())
        serial_csv = tmp_path / "serial.csv"
        dist_csv = tmp_path / "dist.csv"
        assert cli_main(["run", str(spec_path), "--backend", "serial",
                         "--out", str(tmp_path / "a"), "--csv",
                         str(serial_csv), "--quiet"]) == 0
        assert cli_main(["run", str(spec_path), "--backend", "distributed",
                         "--workers", "2", "--out", str(tmp_path / "b"),
                         "--csv", str(dist_csv), "--quiet"]) == 0
        assert serial_csv.read_text() == dist_csv.read_text()

    def test_worker_subcommand_serves_a_broker(self, capsys):
        tasks = _tiny_sweep(n_seeds=1, max_episodes=3).tasks()
        with SweepBroker(tasks) as broker:
            host, port = broker.address
            code = cli_main(["worker", "--connect", f"{host}:{port}",
                             "--id", "cli-test"])
            assert code == 0
            assert broker.join(timeout=1.0)
        assert "1 trials completed" in capsys.readouterr().out
        assert "cli-test" in broker.workers_seen

    def test_worker_subcommand_refuses_dead_address(self, capsys):
        code = cli_main(["worker", "--connect", "127.0.0.1:1"])
        assert code == 2
        assert "error" in capsys.readouterr().err

    @staticmethod
    def _spec():
        return ExperimentSpec(name="cli-dist", designs=("OS-ELM-L2",),
                              hidden_sizes=(16,), n_seeds=2,
                              budget=Budget(max_episodes=5))


class TestWorkerOptions:
    def test_max_tasks_limits_the_loop(self):
        tasks = _tiny_sweep(n_seeds=2, max_episodes=3).tasks()
        from repro.distributed import run_worker

        with SweepBroker(tasks) as broker:
            host, port = broker.address
            completed = run_worker(host, port, WorkerOptions(max_tasks=1))
            assert completed == 1
            assert broker.completed_count == 1
            # A second worker finishes the grid.
            completed = run_worker(host, port, WorkerOptions())
            assert completed == 1
            assert broker.join(timeout=1.0)
