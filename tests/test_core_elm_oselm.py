"""Tests for the ELM / OS-ELM regressors (the paper's Sections 2.1–2.3)."""

import numpy as np
import pytest

from repro.core.elm import ELM
from repro.core.os_elm import OSELM
from repro.core.regularization import RegularizationConfig
from repro.utils.exceptions import NotFittedError, ShapeError


def _make_data(rng, n=300, n_inputs=4):
    x = rng.uniform(-1, 1, size=(n, n_inputs))
    y = (np.sin(2 * x[:, 0]) + x[:, 1] * x[:, 2] - 0.5 * x[:, 3]).reshape(-1, 1)
    return x, y


class TestELM:
    def test_structure_and_defaults(self, rng):
        model = ELM(4, 32, 1, rng=rng)
        assert model.alpha.shape == (4, 32)
        assert model.bias.shape == (32,)
        assert model.beta is None
        assert not model.is_fitted
        assert model.n_parameters == 4 * 32 + 32 + 32 * 1

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            ELM(0, 8, 1)
        with pytest.raises(ValueError):
            ELM(4, -1, 1)

    def test_alpha_uniform_0_1(self, rng):
        model = ELM(4, 256, 1, rng=rng)
        assert model.alpha.min() >= 0.0 and model.alpha.max() <= 1.0
        assert model.bias.min() >= 0.0 and model.bias.max() <= 1.0

    def test_predict_before_fit_raises(self, rng):
        with pytest.raises(NotFittedError):
            ELM(4, 8, rng=rng).predict(np.zeros((1, 4)))

    def test_hidden_shape_and_relu(self, rng):
        model = ELM(3, 16, rng=rng)
        h = model.hidden(rng.normal(size=(5, 3)))
        assert h.shape == (5, 16)
        assert np.all(h >= 0.0)   # ReLU output is non-negative

    def test_wrong_feature_count(self, rng):
        model = ELM(3, 8, rng=rng)
        with pytest.raises(ShapeError):
            model.hidden(np.zeros((2, 4)))

    def test_fit_is_least_squares_optimal(self, rng):
        """Equation 3: beta is the minimum-norm least-squares solution for H beta = T."""
        x = rng.uniform(-1, 1, size=(30, 3))
        y = rng.normal(size=(30, 1))
        model = ELM(3, 64, 1, rng=rng).fit(x, y)
        h = model.hidden(x)
        expected, *_ = np.linalg.lstsq(h, y, rcond=None)
        np.testing.assert_allclose(h @ model.beta, h @ expected, atol=1e-6)
        # The pseudo-inverse solution additionally has minimum norm among all minimisers.
        assert np.linalg.norm(model.beta) <= np.linalg.norm(expected) + 1e-8

    def test_fit_learns_smooth_function(self, rng):
        x, y = _make_data(rng, n=600)
        model = ELM(4, 64, 1, regularization=RegularizationConfig.l2(0.1), rng=rng)
        model.fit(x[:500], y[:500])
        test_error = np.mean((model.predict(x[500:]) - y[500:]) ** 2)
        baseline = np.mean((y[500:] - y[:500].mean()) ** 2)
        assert test_error < 0.5 * baseline

    def test_l2_regularization_shrinks_beta(self, rng):
        x, y = _make_data(rng, n=100)
        plain = ELM(4, 64, 1, rng=np.random.default_rng(0)).fit(x, y)
        ridge = ELM(4, 64, 1, regularization=RegularizationConfig.l2(10.0),
                    rng=np.random.default_rng(0)).fit(x, y)
        assert ridge.beta_frobenius_norm() < plain.beta_frobenius_norm()

    def test_spectral_normalization_applied(self, rng):
        model = ELM(4, 64, 1, regularization=RegularizationConfig.lipschitz(), rng=rng)
        assert np.linalg.norm(model.alpha, 2) == pytest.approx(1.0, rel=1e-9)
        assert model.alpha_spectral_norm > 1.0   # the pre-normalization norm is recorded

    def test_lipschitz_bound_after_normalization(self, rng):
        model = ELM(4, 32, 1, regularization=RegularizationConfig.l2_lipschitz(0.5), rng=rng)
        x, y = _make_data(rng, n=64)
        model.fit(x, y)
        # With sigma_max(alpha)=1 and a 1-Lipschitz activation the bound equals
        # the spectral norm of beta (Section 3.3).
        assert model.lipschitz_upper_bound() == pytest.approx(
            np.linalg.norm(model.beta, 2), rel=1e-9
        )

    def test_lipschitz_property_empirical(self, rng):
        """The network must actually satisfy |f(x1)-f(x2)| <= K ||x1-x2||."""
        model = ELM(4, 32, 1, regularization=RegularizationConfig.l2_lipschitz(0.5), rng=rng)
        x, y = _make_data(rng, n=64)
        model.fit(x, y)
        bound = model.lipschitz_upper_bound()
        points = rng.uniform(-2, 2, size=(50, 4))
        others = points + rng.normal(scale=0.1, size=points.shape)
        lhs = np.abs(model.predict(points) - model.predict(others)).ravel()
        rhs = bound * np.linalg.norm(points - others, axis=1)
        assert np.all(lhs <= rhs + 1e-9)

    def test_reset_redraws_weights(self, rng):
        model = ELM(4, 16, rng=rng)
        old_alpha = model.alpha.copy()
        model.fit(*_make_data(rng, n=50))
        model.reset()
        assert model.beta is None
        assert not np.allclose(model.alpha, old_alpha)

    def test_fit_row_mismatch(self, rng):
        model = ELM(4, 8, rng=rng)
        with pytest.raises(ValueError):
            model.fit(np.zeros((5, 4)), np.zeros((6, 1)))

    def test_same_seed_reproducible(self):
        a = ELM(4, 16, seed=11)
        b = ELM(4, 16, seed=11)
        np.testing.assert_array_equal(a.alpha, b.alpha)
        np.testing.assert_array_equal(a.bias, b.bias)


class TestOSELM:
    def test_init_train_then_predict(self, rng):
        x, y = _make_data(rng, n=100)
        model = OSELM(4, 32, 1, rng=rng)
        model.init_train(x[:50], y[:50])
        assert model.is_initialized
        assert model.p_matrix.shape == (32, 32)
        assert model.predict(x[50:60]).shape == (10, 1)

    def test_partial_fit_before_init_raises(self, rng):
        model = OSELM(4, 8, rng=rng)
        with pytest.raises(NotFittedError):
            model.partial_fit(np.zeros((1, 4)), np.zeros((1, 1)))

    def test_sequential_equals_batch(self, rng):
        """OS-ELM trained chunk-by-chunk must match ELM trained on all data at once.

        This is the central algebraic property of Equations 5-7: the recursive
        solution equals the batch least-squares solution.
        """
        x, y = _make_data(rng, n=240)
        seed = 77
        batch = ELM(4, 24, 1, regularization=RegularizationConfig.l2(0.3), seed=seed)
        batch.fit(x, y)
        online = OSELM(4, 24, 1, regularization=RegularizationConfig.l2(0.3), seed=seed)
        online.init_train(x[:60], y[:60])
        for start in range(60, 240, 10):
            online.partial_fit(x[start:start + 10], y[start:start + 10])
        np.testing.assert_allclose(online.beta, batch.beta, atol=1e-6)
        np.testing.assert_allclose(online.predict(x[:5]), batch.predict(x[:5]), atol=1e-6)

    def test_batch_size_one_path(self, rng):
        """The paper's FPGA configuration: every sequential chunk is a single row."""
        x, y = _make_data(rng, n=150)
        seed = 5
        online = OSELM(4, 16, 1, regularization=RegularizationConfig.l2(0.5), seed=seed)
        online.init_train(x[:40], y[:40])
        for i in range(40, 150):
            online.seq_train_step(x[i], float(y[i, 0]))
        reference = ELM(4, 16, 1, regularization=RegularizationConfig.l2(0.5), seed=seed)
        reference.fit(x, y)
        np.testing.assert_allclose(online.beta, reference.beta, atol=1e-6)

    def test_update_counter(self, rng):
        x, y = _make_data(rng, n=60)
        model = OSELM(4, 8, rng=rng)
        model.init_train(x[:20], y[:20])
        for i in range(20, 30):
            model.seq_train_step(x[i], float(y[i, 0]))
        assert model.n_sequential_updates == 10

    def test_fit_alias_runs_initial_training(self, rng):
        x, y = _make_data(rng, n=40)
        model = OSELM(4, 8, rng=rng).fit(x, y)
        assert model.is_initialized

    def test_reset_clears_recursive_state(self, rng):
        x, y = _make_data(rng, n=60)
        model = OSELM(4, 8, rng=rng)
        model.init_train(x[:30], y[:30])
        model.reset()
        assert not model.is_initialized
        assert model.p_matrix is None

    def test_clone_and_load_state(self, rng):
        x, y = _make_data(rng, n=80)
        model = OSELM(4, 12, 1, rng=rng)
        model.init_train(x[:40], y[:40])
        state = model.clone_state()
        prediction_before = model.predict(x[:3]).copy()
        # mutate, then restore
        model.partial_fit(x[40:60], y[40:60])
        assert not np.allclose(model.predict(x[:3]), prediction_before)
        model.load_state(state)
        np.testing.assert_allclose(model.predict(x[:3]), prediction_before)

    def test_row_mismatch_rejected(self, rng):
        model = OSELM(4, 8, rng=rng)
        model.init_train(np.zeros((10, 4)), np.zeros((10, 1)))
        with pytest.raises(ValueError):
            model.partial_fit(np.zeros((2, 4)), np.zeros((3, 1)))

    def test_sequential_updates_track_drifting_target(self, rng):
        """OS-ELM must adapt to new data without retraining on the old set."""
        model = OSELM(2, 32, 1, regularization=RegularizationConfig.l2(0.1), seed=1)
        x_old = rng.uniform(-1, 1, size=(80, 2))
        y_old = (x_old[:, :1] + x_old[:, 1:]) * 0.5
        model.init_train(x_old, y_old)
        x_new = rng.uniform(-1, 1, size=(400, 2))
        y_new = (x_new[:, :1] - x_new[:, 1:]) * 0.5   # different target function
        for i in range(400):
            model.seq_train_step(x_new[i], float(y_new[i, 0]))
        error_new = float(np.mean((model.predict(x_new[:50]) - y_new[:50]) ** 2))
        assert error_new < 0.05
