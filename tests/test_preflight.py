"""Tests for the distributed-sweep preflight checks and their CLI surface."""

import os
import socket

import pytest

from repro.distributed.preflight import (
    OVERSUBSCRIBE_FACTOR,
    PreflightError,
    check_bind_address,
    check_store_readable,
    check_store_root,
    check_worker_count,
    run_preflight,
)


class TestChecks:
    def test_good_bind_address_passes(self):
        assert check_bind_address("127.0.0.1:0") is None

    def test_malformed_bind_address(self):
        problem = check_bind_address("no-port-here")
        assert problem is not None and "--bind" in problem

    def test_port_already_in_use(self):
        holder = socket.socket()
        holder.bind(("127.0.0.1", 0))
        port = holder.getsockname()[1]
        try:
            problem = check_bind_address(f"127.0.0.1:{port}")
            assert problem is not None
            assert "cannot bind" in problem
            assert "another broker" in problem      # actionable, names the fix
        finally:
            holder.close()

    def test_unresolvable_host(self):
        problem = check_bind_address("surely-not-a-real-host.invalid:5555")
        assert problem is not None and "resolve" in problem

    def test_store_root_created_and_probed(self, tmp_path):
        target = tmp_path / "new" / "nested" / "store"
        assert check_store_root(str(target)) is None
        assert target.is_dir()
        # The write probe cleans up after itself.
        assert list(target.iterdir()) == []

    def test_unwritable_store_root(self, tmp_path):
        if os.geteuid() == 0:
            pytest.skip("root ignores directory permissions")
        locked = tmp_path / "locked"
        locked.mkdir()
        locked.chmod(0o500)
        try:
            problem = check_store_root(str(locked / "store"))
            assert problem is not None and "not writable" in problem
        finally:
            locked.chmod(0o700)

    def test_readable_store_passes(self, tmp_path):
        assert check_store_readable(str(tmp_path)) is None

    def test_missing_store_is_a_problem(self, tmp_path):
        problem = check_store_readable(str(tmp_path / "nope"))
        assert problem is not None
        assert "does not exist" in problem
        assert "--save-policy" in problem                # actionable fix

    def test_unreadable_store_is_a_problem(self, tmp_path):
        if os.geteuid() == 0:
            pytest.skip("root ignores directory permissions")
        locked = tmp_path / "locked"
        locked.mkdir()
        locked.chmod(0o000)
        try:
            problem = check_store_readable(str(locked))
            assert problem is not None and "not readable" in problem
        finally:
            locked.chmod(0o700)

    def test_readable_check_never_creates_the_store(self, tmp_path):
        target = tmp_path / "absent"
        check_store_readable(str(target))
        assert not target.exists()

    def test_worker_count_bounds(self):
        assert check_worker_count(1) is None
        assert check_worker_count(os.cpu_count() or 1) is None
        assert "must be >= 1" in check_worker_count(0)
        too_many = (os.cpu_count() or 1) * OVERSUBSCRIBE_FACTOR + 1
        problem = check_worker_count(too_many)
        assert problem is not None and "oversubscribes" in problem


class TestRunPreflight:
    def test_no_inputs_no_checks(self):
        run_preflight()                          # nothing to check, no error

    def test_all_good_passes(self, tmp_path):
        run_preflight(bind="127.0.0.1:0", store_root=str(tmp_path), workers=1)

    def test_aggregates_every_problem(self, tmp_path):
        with pytest.raises(PreflightError) as excinfo:
            run_preflight(bind="bogus", workers=0)
        error = excinfo.value
        assert len(error.problems) == 2
        assert "2 problems" in str(error)
        assert all(problem in str(error) for problem in error.problems)

    def test_single_problem_message(self):
        with pytest.raises(PreflightError, match="1 problem"):
            run_preflight(workers=-3)

    def test_serve_context_and_extra_problems(self, tmp_path):
        with pytest.raises(PreflightError) as excinfo:
            run_preflight(readable_store_root=str(tmp_path / "missing"),
                          extra_problems=["no trained policy for 'OS-ELM'"],
                          context="serve")
        error = excinfo.value
        assert error.context == "serve"
        assert str(error).startswith("serve preflight failed (2 problems)")
        assert "no trained policy" in str(error)
        assert "does not exist" in str(error)


class TestEngineAndCli:
    def test_engine_runs_preflight_for_distributed_backend(self, tmp_path):
        from repro.api import Budget, ExperimentSpec, run

        spec = ExperimentSpec(name="preflight-tiny", designs=("OS-ELM-L2",),
                              hidden_sizes=(8,), budget=Budget(max_episodes=2))
        with pytest.raises(PreflightError, match="--bind"):
            run(spec, backend="distributed", out=str(tmp_path),
                bind="not-an-address")

    def test_cached_run_skips_preflight(self, tmp_path):
        """A fully cached distributed run trains nothing, so a bad bind
        address must not block re-rendering from cache."""
        from repro.api import Budget, ExperimentSpec, run

        spec = ExperimentSpec(name="preflight-cached", designs=("OS-ELM-L2",),
                              hidden_sizes=(8,), budget=Budget(max_episodes=2))
        run(spec, backend="serial", out=str(tmp_path))
        report = run(spec, backend="distributed", out=str(tmp_path),
                     bind="not-an-address")
        assert report.cached_count == 1

    def test_cli_exit_code_2_with_message(self, tmp_path, capsys):
        from repro.api import Budget, ExperimentSpec
        from repro.api.cli import main
        from repro.utils.serialization import save_json

        spec = ExperimentSpec(name="preflight-cli", designs=("OS-ELM-L2",),
                              hidden_sizes=(8,), budget=Budget(max_episodes=2))
        spec_path = tmp_path / "spec.json"
        save_json(spec_path, spec.to_json())
        code = main(["run", str(spec_path), "--backend", "distributed",
                     "--bind", "not-an-address", "--workers", "-1",
                     "--out", str(tmp_path / "artifacts")])
        assert code == 2
        err = capsys.readouterr().err
        assert "error: distributed sweep preflight failed" in err
        assert "--bind" in err and "--workers" in err

    def test_cli_workers_zero_requires_a_bind_address(self, tmp_path, capsys):
        """``--workers 0`` is the external-fleet mode — valid with --bind
        (1.8; the chaos CI job restarts a journaled broker that way), still
        rejected without one, where zero workers can only hang."""
        from repro.api.cli import main

        code = main(["run", str(self._spec_file(tmp_path)), "--backend",
                     "distributed", "--workers", "0",
                     "--out", str(tmp_path / "artifacts")])
        assert code == 2
        err = capsys.readouterr().err
        assert "--workers" in err

    def _spec_file(self, tmp_path):
        from repro.api import Budget, ExperimentSpec
        from repro.utils.serialization import save_json

        spec = ExperimentSpec(name="serve-cli", designs=("OS-ELM-L2",),
                              hidden_sizes=(8,), budget=Budget(max_episodes=2))
        spec_path = tmp_path / "spec.json"
        save_json(spec_path, spec.to_json())
        return spec_path

    def test_cli_serve_exit_code_2_on_missing_store(self, tmp_path, capsys):
        from repro.api.cli import main

        code = main(["serve", str(self._spec_file(tmp_path)),
                     "--store", str(tmp_path / "absent")])
        assert code == 2
        err = capsys.readouterr().err
        assert "error: serve preflight failed" in err
        assert "does not exist" in err

    def test_cli_serve_exit_code_2_on_untrained_store(self, tmp_path, capsys):
        from repro.api.cli import main

        empty = tmp_path / "store"
        empty.mkdir()
        code = main(["serve", str(self._spec_file(tmp_path)),
                     "--store", str(empty)])
        assert code == 2
        err = capsys.readouterr().err
        assert "error: serve preflight failed" in err
        assert "no trained policy for design 'OS-ELM-L2'" in err
        assert "--save-policy" in err
