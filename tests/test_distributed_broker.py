"""Protocol-level tests of the sweep broker: leases, requeue, dedup.

These tests drive :class:`~repro.distributed.broker.SweepBroker` with raw
scripted sockets instead of real workers, so every fault the fleet can
throw at the broker — a worker killed mid-trial (dropped connection), a
silently hung worker (lease expiry), a task delivered twice — is exercised
deterministically, without real training or process juggling.
"""

import json
import socket
import threading
import time

import pytest

from repro.distributed import protocol
from repro.distributed.broker import SweepBroker
from repro.distributed.coordinator import run_distributed_sweep
from repro.parallel.sweep import SweepSpec
from repro.rl.runner import TrainingConfig
from repro.telemetry.fleet import (
    FleetStatusError,
    fetch_fleet_stats,
    format_fleet_status,
)


def _tiny_tasks(n_seeds=2):
    spec = SweepSpec(designs=("OS-ELM-L2",), n_seeds=n_seeds, n_hidden=8,
                     training=TrainingConfig(max_episodes=3), root_seed=99)
    return spec.tasks()


class _ScriptedWorker:
    """A bare socket speaking the worker protocol, one frame at a time."""

    def __init__(self, broker, worker_id="scripted"):
        host, port = broker.address
        self.sock = socket.create_connection((host, port), timeout=5.0)
        protocol.send_message(self.sock, protocol.HELLO, worker_id)
        kind, info = protocol.recv_message(self.sock)
        assert kind == protocol.WELCOME
        self.welcome_info = info
        self.announced_tasks = info["tasks"]

    def get(self, capacity=None):
        """GET with an advertised lease capacity (None = pre-1.4 worker)."""
        protocol.send_message(self.sock, protocol.GET, capacity)
        return protocol.recv_message(self.sock)

    def stats(self):
        """Request one STATS snapshot over this connection (1.5+)."""
        protocol.send_message(self.sock, protocol.STATS)
        kind, snapshot = protocol.recv_message(self.sock)
        assert kind == protocol.STATS
        return snapshot

    def send_result(self, index, result="result", backend="distributed"):
        protocol.send_message(self.sock, protocol.RESULT,
                              (index, result, backend))
        kind, fresh = protocol.recv_message(self.sock)
        assert kind == protocol.ACK
        return fresh

    def heartbeat(self):
        protocol.send_message(self.sock, protocol.HEARTBEAT)

    def close(self):
        self.sock.close()


def _wait_until(predicate, timeout=5.0, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.01)
    raise AssertionError(f"timed out waiting for {message}")


class TestBrokerProtocol:
    def test_empty_grid_is_born_finished(self):
        broker = SweepBroker([])
        assert broker.join(timeout=0.1)
        assert broker.results() == []
        # The coordinator shortcut never binds a socket for an empty grid.
        assert run_distributed_sweep([]) == []

    def test_tasks_served_in_order_then_shutdown(self):
        with SweepBroker(_tiny_tasks(2)) as broker:
            worker = _ScriptedWorker(broker)
            assert worker.announced_tasks == 2
            for expected_index in (0, 1):
                kind, (index, task) = worker.get()
                assert kind == protocol.TASK and index == expected_index
                assert worker.send_result(index, result=f"r{index}") is True
            kind, _ = worker.get()
            assert kind == protocol.SHUTDOWN
            assert broker.join(timeout=1.0)
            assert [r for r, _ in broker.results()] == ["r0", "r1"]
            worker.close()

    def test_results_raises_while_incomplete(self):
        with SweepBroker(_tiny_tasks(2)) as broker:
            with pytest.raises(RuntimeError, match="incomplete"):
                broker.results()

    def test_worker_crash_mid_trial_requeues_task(self):
        """A dropped connection (kill -9 equivalent) returns the lease."""
        with SweepBroker(_tiny_tasks(1)) as broker:
            doomed = _ScriptedWorker(broker, "doomed")
            kind, (index, _) = doomed.get()
            assert kind == protocol.TASK and index == 0
            doomed.close()                       # dies holding the lease
            _wait_until(lambda: broker.requeued_tasks == 1,
                        message="disconnect requeue")
            survivor = _ScriptedWorker(broker, "survivor")
            kind, (index, _) = survivor.get()
            assert kind == protocol.TASK and index == 0   # same task again
            assert survivor.send_result(0) is True
            assert broker.join(timeout=1.0)
            survivor.close()

    def test_silent_worker_lease_expires(self):
        """A hung worker (connected, no heartbeats) loses its lease."""
        with SweepBroker(_tiny_tasks(1), heartbeat_timeout=0.3) as broker:
            hung = _ScriptedWorker(broker, "hung")
            kind, (index, _) = hung.get()
            assert kind == protocol.TASK
            _wait_until(lambda: broker.requeued_tasks == 1, timeout=3.0,
                        message="lease expiry")
            survivor = _ScriptedWorker(broker, "survivor")
            kind, (index, _) = survivor.get()
            assert kind == protocol.TASK and index == 0
            survivor.send_result(0)
            assert broker.join(timeout=1.0)
            hung.close()
            survivor.close()

    def test_heartbeats_keep_a_slow_trial_leased(self):
        with SweepBroker(_tiny_tasks(1), heartbeat_timeout=0.4) as broker:
            worker = _ScriptedWorker(broker)
            kind, (index, _) = worker.get()
            assert kind == protocol.TASK
            for _ in range(10):                  # 1s of training, beating at 0.1s
                time.sleep(0.1)
                worker.heartbeat()
            assert broker.requeued_tasks == 0
            worker.send_result(index)
            assert broker.join(timeout=1.0)
            worker.close()

    def test_duplicate_result_delivery_is_deduped(self):
        """First delivery wins; the duplicate is acked but dropped."""
        with SweepBroker(_tiny_tasks(1), heartbeat_timeout=0.2) as broker:
            slow = _ScriptedWorker(broker, "slow")
            kind, (index, _) = slow.get()
            assert kind == protocol.TASK
            _wait_until(lambda: broker.requeued_tasks == 1, timeout=3.0,
                        message="lease expiry")   # slow looks dead; task requeued
            fast = _ScriptedWorker(broker, "fast")
            kind, (index, _) = fast.get()
            assert kind == protocol.TASK and index == 0
            assert fast.send_result(0, result="first") is True
            # ...now the "dead" worker wakes up and delivers anyway.
            assert slow.send_result(0, result="second") is False
            assert broker.duplicate_results == 1
            assert [r for r, _ in broker.results()] == ["first"]
            slow.close()
            fast.close()

    def test_late_result_after_expiry_is_not_retrained(self):
        """An expired-then-delivered task must leave the requeued copy dead:
        the next GET sees SHUTDOWN, not a pointless re-lease."""
        with SweepBroker(_tiny_tasks(1), heartbeat_timeout=0.2) as broker:
            slow = _ScriptedWorker(broker, "slow")
            kind, (index, _) = slow.get()
            assert kind == protocol.TASK
            _wait_until(lambda: broker.requeued_tasks == 1, timeout=3.0,
                        message="lease expiry")
            # The original holder delivers anyway — still the first result.
            assert slow.send_result(0, result="late-but-first") is True
            assert broker.join(timeout=1.0)
            other = _ScriptedWorker(broker, "other")
            kind, _ = other.get()
            assert kind == protocol.SHUTDOWN     # requeued copy was dropped
            assert [r for r, _ in broker.results()] == ["late-but-first"]
            slow.close()
            other.close()

    def test_stale_holder_disconnect_keeps_reissued_lease(self):
        """After a lease expires and is re-issued, the original holder's
        disconnect must not yank the new holder's lease."""
        with SweepBroker(_tiny_tasks(1), heartbeat_timeout=0.2) as broker:
            stale = _ScriptedWorker(broker, "stale")
            kind, (index, _) = stale.get()
            assert kind == protocol.TASK
            _wait_until(lambda: broker.requeued_tasks == 1, timeout=3.0,
                        message="lease expiry")
            current = _ScriptedWorker(broker, "current")
            kind, (index, _) = current.get()
            assert kind == protocol.TASK and index == 0
            stale.close()                        # must not requeue task 0 again
            time.sleep(0.1)
            assert broker.requeued_tasks == 1
            # current keeps beating, finishes, and the result is fresh.
            current.heartbeat()
            assert current.send_result(0) is True
            assert broker.join(timeout=1.0)
            current.close()

    def test_wait_frame_when_all_tasks_leased(self):
        with SweepBroker(_tiny_tasks(1)) as broker:
            holder = _ScriptedWorker(broker, "holder")
            kind, _ = holder.get()
            assert kind == protocol.TASK
            idle = _ScriptedWorker(broker, "idle")
            kind, seconds = idle.get()
            assert kind == protocol.WAIT and seconds > 0
            holder.send_result(0)
            kind, _ = idle.get()
            assert kind == protocol.SHUTDOWN
            holder.close()
            idle.close()

    def test_callback_streams_fresh_results_only(self):
        seen = []
        tasks = _tiny_tasks(2)
        with SweepBroker(tasks, callback=lambda t, r: seen.append((t.trial, r))
                         ) as broker:
            worker = _ScriptedWorker(broker)
            for index in (0, 1):
                worker.get()
                worker.send_result(index, result=f"r{index}")
            worker.send_result(1, result="dup")     # duplicate: no callback
            assert broker.join(timeout=1.0)
            worker.close()
        assert seen == [(0, "r0"), (1, "r1")]


class TestProtocolHelpers:
    def test_parse_address(self):
        assert protocol.parse_address("10.0.0.1:5555") == ("10.0.0.1", 5555)
        with pytest.raises(ValueError, match="HOST:PORT"):
            protocol.parse_address("5555")
        with pytest.raises(ValueError):
            protocol.parse_address("host:not-a-port")

    def test_oversized_frame_rejected(self):
        left, right = socket.socketpair()
        try:
            left.sendall((protocol.MAX_FRAME_BYTES + 1).to_bytes(8, "big"))
            with pytest.raises(protocol.ProtocolError, match="exceeds the"):
                protocol.recv_message(right)
        finally:
            left.close()
            right.close()

    def test_eof_mid_payload_raises_connection_error(self):
        """Peer dies after the length header but before the payload ends."""
        left, right = socket.socketpair()
        try:
            left.sendall((100).to_bytes(8, "big") + b"short")
            left.close()
            with pytest.raises(ConnectionError) as caught:
                protocol.recv_message(right)
            # An outage, not a wire violation: reconnect loops must retry it.
            assert not isinstance(caught.value, protocol.ProtocolError)
        finally:
            right.close()

    def test_eof_mid_length_header_raises_connection_error(self):
        """Peer dies inside the 8-byte length prefix itself."""
        left, right = socket.socketpair()
        try:
            left.sendall((100).to_bytes(8, "big")[:3])
            left.close()
            with pytest.raises(ConnectionError) as caught:
                protocol.recv_message(right)
            assert not isinstance(caught.value, protocol.ProtocolError)
        finally:
            right.close()


class TestLeaseBatching:
    def test_lease_batch_serves_k_tasks_per_get(self):
        with SweepBroker(_tiny_tasks(3), lease_batch=2) as broker:
            worker = _ScriptedWorker(broker)
            kind, leased = worker.get(capacity=8)
            assert kind == protocol.TASKS
            assert [index for index, _ in leased] == [0, 1]
            # Each leased task is an independent lease with its own result.
            assert worker.send_result(0, result="r0") is True
            assert worker.send_result(1, result="r1") is True
            kind, leased = worker.get(capacity=8)  # tail batch may be short
            assert kind == protocol.TASKS
            assert [index for index, _ in leased] == [2]
            assert worker.send_result(2, result="r2") is True
            kind, _ = worker.get(capacity=8)
            assert kind == protocol.SHUTDOWN
            assert [r for r, _ in broker.results()] == ["r0", "r1", "r2"]
            worker.close()

    def test_pre_batching_worker_gets_classic_task_frames(self):
        """Capability negotiation: a worker that does not advertise a lease
        capacity (a pre-1.4 `repro worker`) must keep receiving one TASK
        frame per GET even from a batching broker."""
        with SweepBroker(_tiny_tasks(2), lease_batch=4) as broker:
            legacy = _ScriptedWorker(broker, worker_id="legacy")
            for expected_index in (0, 1):
                kind, (index, _task) = legacy.get()      # None capacity
                assert kind == protocol.TASK and index == expected_index
                legacy.send_result(index, result=f"r{index}")
            assert broker.join(timeout=1.0)
            legacy.close()

    def test_capacity_caps_batch_below_broker_lease_batch(self):
        with SweepBroker(_tiny_tasks(3), lease_batch=3) as broker:
            worker = _ScriptedWorker(broker)
            kind, leased = worker.get(capacity=2)
            assert kind == protocol.TASKS and len(leased) == 2
            for index, _ in leased:
                worker.send_result(index, result=f"r{index}")
            kind, payload = worker.get(capacity=1)       # single-task request
            assert kind == protocol.TASK
            worker.send_result(payload[0], result="r-last")
            assert broker.join(timeout=1.0)
            worker.close()

    def test_lease_batch_one_keeps_classic_task_frames(self):
        with SweepBroker(_tiny_tasks(1), lease_batch=1) as broker:
            worker = _ScriptedWorker(broker)
            kind, payload = worker.get()
            assert kind == protocol.TASK           # wire-compatible default
            worker.send_result(payload[0], result="r")
            worker.close()
            assert broker.join(timeout=1.0)

    def test_worker_death_mid_batch_requeues_unfinished_leases(self):
        with SweepBroker(_tiny_tasks(3), lease_batch=3) as broker:
            doomed = _ScriptedWorker(broker, worker_id="doomed")
            kind, leased = doomed.get(capacity=8)
            assert kind == protocol.TASKS and len(leased) == 3
            doomed.send_result(0, result="done-before-death")
            doomed.close()                          # dies holding tasks 1, 2
            _wait_until(lambda: broker.requeued_tasks == 2,
                        message="unfinished leases requeued")
            survivor = _ScriptedWorker(broker, worker_id="survivor")
            kind, leased = survivor.get(capacity=8)
            assert kind == protocol.TASKS
            assert {index for index, _ in leased} == {1, 2}
            for index, _ in leased:
                survivor.send_result(index, result=f"retry-{index}")
            assert broker.join(timeout=1.0)
            results = [r for r, _ in broker.results()]
            assert results == ["done-before-death", "retry-1", "retry-2"]
            survivor.close()

    def test_lease_batch_validation(self):
        with pytest.raises(ValueError, match="lease_batch"):
            SweepBroker(_tiny_tasks(1), lease_batch=0)

    def test_stats_requests_interleave_with_lease_batches(self):
        """STATS is just another frame on the worker connection — it must
        not disturb in-flight leases or batch accounting."""
        with SweepBroker(_tiny_tasks(3), lease_batch=2) as broker:
            worker = _ScriptedWorker(broker)
            kind, leased = worker.get(capacity=8)
            assert kind == protocol.TASKS and len(leased) == 2
            snap = worker.stats()
            assert snap["tasks"]["leased"] == 2
            assert snap["lease_batch"] == 2
            for index, _ in leased:
                worker.send_result(index, result=f"r{index}")
            kind, leased = worker.get(capacity=8)
            assert kind == protocol.TASKS and len(leased) == 1
            worker.send_result(leased[0][0], result="r2")
            assert broker.join(timeout=1.0)
            worker.close()

    def test_end_to_end_lease_batched_sweep_matches_serial(self):
        """Real worker fleet pulling k=2 task batches converges to the
        bit-identical serial outcome (the worker executes each task through
        the unchanged serial trainer)."""
        import numpy as np

        from repro.parallel.sweep import SweepRunner

        spec = SweepSpec(designs=("OS-ELM-L2",), n_seeds=3, n_hidden=8,
                         training=TrainingConfig(max_episodes=4), root_seed=31)
        serial = SweepRunner(spec, backend="serial").run()
        batched = SweepRunner(spec, backend="distributed", max_workers=2,
                              lease_batch=2).run()
        assert set(batched.backends_used) == {"distributed"}
        for serial_result, dist_result in zip(serial.results_for(),
                                              batched.results_for()):
            np.testing.assert_array_equal(serial_result.curve.steps,
                                          dist_result.curve.steps)


class TestStatsChannel:
    """The 1.5 STATS frame + `repro fleet status` client, wire level."""

    def test_welcome_advertises_stats_capability(self):
        with SweepBroker(_tiny_tasks(1)) as broker:
            worker = _ScriptedWorker(broker)
            assert worker.welcome_info["stats"] is True
            worker.close()

    def test_stats_on_untouched_grid(self):
        with SweepBroker(_tiny_tasks(3)) as broker:
            worker = _ScriptedWorker(broker)
            snap = worker.stats()
            assert snap["tasks"] == {"total": 3, "queued": 3,
                                     "leased": 0, "done": 0}
            assert snap["repro_version"]
            assert snap["heartbeat_timeout"] == broker.heartbeat_timeout
            # The snapshot is the fleet-status JSON document: serializable.
            json.dumps(snap)
            worker.close()

    def test_stats_on_empty_grid(self):
        """An empty grid is legal (the broker is born finished) and its
        snapshot reconciles to all-zeros rather than crashing."""
        with SweepBroker([]) as broker:
            worker = _ScriptedWorker(broker)
            snap = worker.stats()
            assert snap["tasks"] == {"total": 0, "queued": 0,
                                     "leased": 0, "done": 0}
            worker.close()

    def test_stats_while_all_tasks_leased(self):
        with SweepBroker(_tiny_tasks(2)) as broker:
            holder = _ScriptedWorker(broker, "holder")
            holder.get()
            holder.get()
            snap = holder.stats()
            assert snap["tasks"] == {"total": 2, "queued": 0,
                                     "leased": 2, "done": 0}
            row = snap["workers"]["holder"]
            assert row["connected"] is True
            assert row["leases"] == 2
            assert row["oldest_lease_age"] >= 0.0
            assert row["completed"] == 0
            holder.close()

    def test_reconciliation_invariant_through_lifecycle(self):
        """queued + leased + done == total at every stage of a sweep."""
        with SweepBroker(_tiny_tasks(3)) as broker:
            worker = _ScriptedWorker(broker, "w")

            def tasks():
                snap = worker.stats()["tasks"]
                assert (snap["queued"] + snap["leased"] + snap["done"]
                        == snap["total"] == 3)
                return snap

            assert tasks()["queued"] == 3
            worker.get()
            assert tasks()["leased"] == 1
            worker.send_result(0, result="r0")
            stage = tasks()
            assert stage["done"] == 1 and stage["leased"] == 0
            worker.get()
            worker.get()
            assert tasks()["leased"] == 2
            worker.send_result(1, result="r1")
            worker.send_result(2, result="r2")
            final = tasks()
            assert final["done"] == 3 and final["queued"] == 0
            assert worker.stats()["workers"]["w"]["completed"] == 3
            assert broker.join(timeout=1.0)
            worker.close()

    def test_wait_replies_counted(self):
        with SweepBroker(_tiny_tasks(1)) as broker:
            holder = _ScriptedWorker(broker, "holder")
            holder.get()
            idle = _ScriptedWorker(broker, "idle")
            kind, _ = idle.get()
            assert kind == protocol.WAIT
            assert idle.stats()["counters"]["wait_replies"] == 1
            holder.send_result(0)
            holder.close()
            idle.close()

    def test_disconnected_worker_marked_gone(self):
        with SweepBroker(_tiny_tasks(1)) as broker:
            doomed = _ScriptedWorker(broker, "doomed")
            doomed.get()
            doomed.close()
            _wait_until(lambda: broker.requeued_tasks == 1,
                        message="disconnect requeue")
            observer = _ScriptedWorker(broker)
            snap = observer.stats()
            row = snap["workers"]["doomed"]
            assert row["connected"] is False
            assert row["leases"] == 0            # lease went back to the queue
            assert snap["tasks"]["queued"] == 1
            assert snap["counters"]["requeued_tasks"] == 1
            observer.close()

    def test_pre_stats_worker_serves_unchanged(self):
        """Mixed fleet: a worker that ignores the stats flag and never sends
        a STATS frame (a pre-1.5 `repro worker`) completes tasks exactly as
        before, and its work is still attributed in the snapshot."""
        with SweepBroker(_tiny_tasks(2)) as broker:
            legacy = _ScriptedWorker(broker, "legacy")   # never calls .stats()
            assert legacy.announced_tasks == 2           # reads only "tasks"
            for index in (0, 1):
                kind, (got, _task) = legacy.get()
                assert kind == protocol.TASK and got == index
                legacy.send_result(index, result=f"r{index}")
            assert broker.join(timeout=1.0)
            host, port = broker.address
            snap = fetch_fleet_stats(host, port)
            assert snap["workers"]["legacy"]["completed"] == 2
            assert snap["tasks"]["done"] == 2
            legacy.close()

    def test_observer_stays_out_of_worker_accounting(self):
        with SweepBroker(_tiny_tasks(1)) as broker:
            worker = _ScriptedWorker(broker, "real-worker")
            host, port = broker.address
            snap = fetch_fleet_stats(host, port)
            assert list(snap["workers"]) == ["real-worker"]
            assert snap["counters"]["workers_seen"] == 1
            assert not any(seen.startswith(protocol.OBSERVER_PREFIX)
                           for seen in broker.workers_seen)
            worker.close()

    def test_fetch_fleet_stats_unreachable_broker(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()                            # nothing listens here now
        with pytest.raises(FleetStatusError, match="cannot reach"):
            fetch_fleet_stats("127.0.0.1", port, timeout=0.5)

    def test_fetch_fleet_stats_rejects_pre_stats_broker(self):
        """Wire-level downgrade: a broker whose WELCOME lacks the stats flag
        (repro < 1.5) yields an actionable error, not a hang or traceback."""
        server = socket.socket()
        server.bind(("127.0.0.1", 0))
        server.listen(1)
        host, port = server.getsockname()[:2]

        def legacy_broker():
            connection, _ = server.accept()
            with connection:
                kind, _ = protocol.recv_message(connection)
                assert kind == protocol.HELLO
                protocol.send_message(connection, protocol.WELCOME,
                                      {"tasks": 5})   # pre-1.5: no stats flag
        thread = threading.Thread(target=legacy_broker, daemon=True)
        thread.start()
        try:
            with pytest.raises(FleetStatusError, match="does not advertise"):
                fetch_fleet_stats(host, port, timeout=2.0)
            thread.join(timeout=2.0)
        finally:
            server.close()

    def test_format_fleet_status_renders_workers_and_empty_fleet(self):
        with SweepBroker(_tiny_tasks(2)) as broker:
            empty = format_fleet_status(broker.stats_snapshot())
            assert "0/2 done" in empty
            assert "workers: none registered yet" in empty
            worker = _ScriptedWorker(broker, "w0")
            worker.get()
            text = format_fleet_status(broker.stats_snapshot())
            assert "w0" in text and "up" in text
            assert "1 leased" in text
            worker.close()

    def test_fleet_status_cli_json(self, capsys):
        from repro.api.cli import main

        with SweepBroker(_tiny_tasks(2)) as broker:
            host, port = broker.address
            assert main(["fleet", "status", "--connect",
                         f"{host}:{port}", "--json"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        tasks = snapshot["tasks"]
        assert (tasks["queued"] + tasks["leased"] + tasks["done"]
                == tasks["total"] == 2)

    def test_fleet_status_cli_errors(self, capsys):
        from repro.api.cli import main

        assert main(["fleet", "status", "--connect", "no-port-here"]) == 2
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        assert main(["fleet", "status", "--connect",
                     f"127.0.0.1:{port}", "--timeout", "0.5"]) == 2
        assert "error:" in capsys.readouterr().err


class TestWorkerReconnectAccounting:
    """HELLO from a known worker id is a reconnection, not a new worker."""

    def test_rehello_preserves_identity_and_counts_reconnection(self):
        with SweepBroker(_tiny_tasks(2)) as broker:
            first = _ScriptedWorker(broker, "w0")
            first.get()
            assert first.send_result(0) is True
            first.close()
            _wait_until(lambda: not broker.stats_snapshot()["workers"]["w0"]
                        ["connected"], message="disconnect noticed")
            second = _ScriptedWorker(broker, "w0")   # same id: a reconnect
            assert broker.worker_reconnections == 1
            row = broker.stats_snapshot()["workers"]["w0"]
            assert row["connected"] is True
            assert row["completed"] == 1             # history preserved
            assert broker.stats_snapshot()["counters"]["workers_seen"] == 1
            second.close()

    def test_duplicate_result_from_reconnected_worker_is_deduped(self):
        """A worker dies holding a lease, someone else retrains the task,
        then the original worker reconnects and redelivers its stranded
        result — the exact redelivery race the 1.8 reconnect loop creates."""
        with SweepBroker(_tiny_tasks(1)) as broker:
            original = _ScriptedWorker(broker, "flaky")
            kind, (index, _task) = original.get()
            assert kind == protocol.TASK and index == 0
            original.close()                     # connection cut mid-trial
            _wait_until(lambda: broker.requeued_tasks == 1,
                        message="lease requeued")
            other = _ScriptedWorker(broker, "steady")
            kind, (index, _task) = other.get()
            assert kind == protocol.TASK and index == 0
            assert other.send_result(0, result="retrained") is True
            # The flaky worker comes back under its old id and redelivers.
            revenant = _ScriptedWorker(broker, "flaky")
            assert revenant.send_result(0, result="stranded-copy") is False
            assert broker.duplicate_results == 1
            assert broker.worker_reconnections == 1
            assert [r for r, _ in broker.results()] == ["retrained"]
            other.close()
            revenant.close()


DRAIN_CAPACITY = {"capacity": 8, "drain": True}   # a 1.7+ worker's GET payload


class TestDrainProtocol:
    """The negotiated DRAIN frame: graceful worker retirement (1.7+)."""

    def test_welcome_advertises_drain_capability(self):
        with SweepBroker(_tiny_tasks(1)) as broker:
            worker = _ScriptedWorker(broker)
            assert worker.welcome_info["drain"] is True
            worker.close()

    def test_marked_worker_finishes_lease_then_gets_drain_frame(self):
        """The full choreography: mark -> deliver in-flight -> DRAIN -> exit,
        with zero requeued leases (the elastic-fleet contract)."""
        from repro.fleet import request_drain

        with SweepBroker(_tiny_tasks(3)) as broker:
            host, port = broker.address
            worker = _ScriptedWorker(broker, "w0")
            kind, (index, _task) = worker.get(DRAIN_CAPACITY)
            assert kind == protocol.TASK and index == 0
            report = request_drain(host, port, ["w0"])
            assert report == {"marked": ["w0"], "already_draining": [],
                              "unknown": [], "gone": []}
            # In-flight result still lands normally after the mark...
            assert worker.send_result(0) is True
            # ...and the next GET is the retirement order, not a lease.
            kind, payload = worker.get(DRAIN_CAPACITY)
            assert kind == protocol.DRAIN and payload is None
            worker.close()
            _wait_until(lambda: broker.drains_completed == 1,
                        message="graceful drain settled")
            assert broker.drains_requested == 1
            assert broker.drain_requeued_tasks == 0
            assert broker.requeued_tasks == 0
            assert len(broker.drain_durations) == 1
            # The drained worker's delivered result is never re-leased.
            survivor = _ScriptedWorker(broker, "w1")
            kind, (index, _task) = survivor.get(DRAIN_CAPACITY)
            assert kind == protocol.TASK and index == 1
            survivor.close()

    def test_legacy_worker_marked_for_drain_degrades_gracefully(self):
        """A pre-1.7 worker (bare-int GET payload) never negotiated DRAIIN,
        so a drain mark must not change what it is served — the supervisor
        retires such workers by signal instead."""
        with SweepBroker(_tiny_tasks(2)) as broker:
            legacy = _ScriptedWorker(broker, "old")
            assert broker.mark_draining(["old"])["marked"] == ["old"]
            kind, (index, _task) = legacy.get(8)     # int: pre-1.7 payload
            assert kind == protocol.TASK and index == 0
            legacy.send_result(0)
            kind, _ = legacy.get(None)               # pre-1.4 payload form
            assert kind == protocol.TASK
            legacy.send_result(1)
            legacy.close()
            # Disconnecting with everything delivered still settles as a
            # graceful drain on the broker's books.
            _wait_until(lambda: broker.drains_completed == 1,
                        message="legacy drain settled")
            assert broker.drain_requeued_tasks == 0

    def test_self_drain_announce_is_unsolicited(self):
        """(DRAIN, None) from a worker (SIGTERM landed) marks it without a
        reply; the clean disconnect right after counts as graceful."""
        with SweepBroker(_tiny_tasks(1)) as broker:
            worker = _ScriptedWorker(broker, "sig")
            protocol.send_message(worker.sock, protocol.DRAIN, None)
            _wait_until(lambda: broker.draining_workers() == ["sig"],
                        message="self-drain mark")
            worker.close()
            _wait_until(lambda: broker.drains_completed == 1,
                        message="self drain settled")
            assert broker.drains_requested == 1
            assert broker.drain_requeued_tasks == 0

    def test_draining_worker_dying_with_lease_counts_lost_work(self):
        """Dying mid-drain is NOT graceful: the abandoned lease requeues and
        is pinned on drain_requeued_tasks (the counter CI asserts is 0)."""
        with SweepBroker(_tiny_tasks(2)) as broker:
            doomed = _ScriptedWorker(broker, "doomed")
            kind, (index, _task) = doomed.get(DRAIN_CAPACITY)
            assert kind == protocol.TASK and index == 0
            broker.mark_draining(["doomed"])
            doomed.close()                       # dies holding the lease
            _wait_until(lambda: broker.drain_requeued_tasks == 1,
                        message="drain death accounted")
            assert broker.drains_completed == 0
            assert broker.drain_durations == []
            survivor = _ScriptedWorker(broker, "survivor")
            served = set()
            for _ in range(2):                   # task 1 + the requeued task 0
                kind, (index, _task) = survivor.get(DRAIN_CAPACITY)
                assert kind == protocol.TASK
                served.add(index)
            assert served == {0, 1}              # the lost lease came back
            survivor.close()

    def test_drain_control_dispositions(self):
        from repro.fleet import request_drain

        with SweepBroker(_tiny_tasks(1)) as broker:
            host, port = broker.address
            worker = _ScriptedWorker(broker, "w0")
            gone = _ScriptedWorker(broker, "w-gone")
            gone.close()
            _wait_until(lambda: broker.stats_snapshot()["counters"]
                        ["active_connections"] == 1,
                        message="gone worker disconnect")
            first = request_drain(host, port, ["w0", "w-gone", "ghost"])
            assert first["marked"] == ["w0"]
            assert first["gone"] == ["w-gone"]
            assert first["unknown"] == ["ghost"]
            second = request_drain(host, port, ["w0"])
            assert second["already_draining"] == ["w0"]
            assert broker.drains_requested == 1   # marked once, not twice
            worker.close()

    def test_stats_snapshot_reports_drain_state(self):
        with SweepBroker(_tiny_tasks(1)) as broker:
            worker = _ScriptedWorker(broker, "w0")
            worker.get(DRAIN_CAPACITY)
            broker.mark_draining(["w0"])
            snap = broker.stats_snapshot()
            assert snap["workers"]["w0"]["draining"] is True
            assert snap["counters"]["drains_requested"] == 1
            assert snap["counters"]["drains_completed"] == 0
            assert snap["counters"]["drain_requeued_tasks"] == 0
            assert snap["drain_seconds"] == []
            text = format_fleet_status(snap)
            assert "draining" in text
            assert "drains: requested=1 completed=0 lost_leases=0" in text
            worker.close()

    def test_reconciliation_invariant_under_worker_churn(self):
        """queued + leased + done == total through joins, drains and deaths
        mid-sweep — and a drained worker's last result is never recounted."""
        def check(broker):
            tasks = broker.stats_snapshot()["tasks"]
            assert (tasks["queued"] + tasks["leased"] + tasks["done"]
                    == tasks["total"]), tasks
            return tasks

        from repro.fleet import request_drain

        with SweepBroker(_tiny_tasks(6)) as broker:
            host, port = broker.address
            check(broker)
            # join: two workers lease one task each
            a = _ScriptedWorker(broker, "a")
            b = _ScriptedWorker(broker, "b")
            _, (ia, _t) = a.get(DRAIN_CAPACITY)
            _, (ib, _t) = b.get(DRAIN_CAPACITY)
            assert check(broker)["leased"] == 2
            # drain: a delivers its last result, is marked, disconnects
            assert a.send_result(ia) is True
            request_drain(host, port, ["a"])
            kind, _ = a.get(DRAIN_CAPACITY)
            assert kind == protocol.DRAIN
            a.close()
            _wait_until(lambda: broker.drains_completed == 1,
                        message="drain settled")
            done_after_drain = check(broker)["done"]
            assert done_after_drain == 1
            # death: b dies holding its lease; the task requeues
            b.close()
            _wait_until(lambda: broker.requeued_tasks == 1,
                        message="death requeue")
            assert check(broker)["done"] == done_after_drain
            # a late duplicate of the drained worker's result is dropped,
            # not double counted
            c = _ScriptedWorker(broker, "c")
            assert c.send_result(ia) is False
            assert broker.duplicate_results == 1
            assert check(broker)["done"] == done_after_drain
            # c finishes the rest of the grid; totals reconcile to the end
            while True:
                kind, payload = c.get(DRAIN_CAPACITY)
                if kind == protocol.SHUTDOWN:
                    break
                assert kind == protocol.TASK
                index, _task = payload
                c.send_result(index)
                check(broker)
            assert broker.join(timeout=2.0)
            final = check(broker)
            assert final["done"] == final["total"] == 6
            assert broker.drain_requeued_tasks == 0
            c.close()


class TestDrainCrossVersion:
    """Version hygiene: 1.7 workers against pre-1.7 brokers and vice versa."""

    def test_new_worker_against_pre_drain_broker_sends_legacy_get(self):
        """A 1.7 worker that sees no drain flag in WELCOME must fall back to
        the bare-int GET payload a pre-1.7 broker understands."""
        from repro.distributed.worker import (LEASE_CAPACITY, WorkerOptions,
                                              run_worker)

        server = socket.socket()
        server.bind(("127.0.0.1", 0))
        server.listen(1)
        host, port = server.getsockname()[:2]
        seen_payloads = []

        def legacy_broker():
            connection, _ = server.accept()
            with connection:
                kind, _ = protocol.recv_message(connection)
                assert kind == protocol.HELLO
                protocol.send_message(connection, protocol.WELCOME,
                                      {"tasks": 1, "stats": True})  # no drain
                kind, payload = protocol.recv_message(connection)
                assert kind == protocol.GET
                seen_payloads.append(payload)
                protocol.send_message(connection, protocol.SHUTDOWN, None)

        thread = threading.Thread(target=legacy_broker, daemon=True)
        thread.start()
        try:
            completed = run_worker(host, port,
                                   WorkerOptions(worker_id="new-worker",
                                                 handle_signals=False))
            thread.join(timeout=2.0)
        finally:
            server.close()
        assert completed == 0
        assert seen_payloads == [LEASE_CAPACITY]   # bare int, never a dict

    def test_request_drain_rejects_pre_drain_broker(self):
        from repro.fleet import FleetControlError, request_drain

        server = socket.socket()
        server.bind(("127.0.0.1", 0))
        server.listen(1)
        host, port = server.getsockname()[:2]

        def legacy_broker():
            connection, _ = server.accept()
            with connection:
                kind, _ = protocol.recv_message(connection)
                assert kind == protocol.HELLO
                protocol.send_message(connection, protocol.WELCOME,
                                      {"tasks": 1, "stats": True})

        thread = threading.Thread(target=legacy_broker, daemon=True)
        thread.start()
        try:
            with pytest.raises(FleetControlError, match="does not advertise"):
                request_drain(host, port, ["w0"], timeout=2.0)
            thread.join(timeout=2.0)
        finally:
            server.close()

    def test_new_worker_against_new_broker_negotiates_drain(self):
        """End to end over real sockets: the worker upgrades its GET payload
        to the capability dict and honours a DRAIN reply by exiting."""
        from repro.distributed.worker import WorkerOptions, run_worker
        from repro.fleet import request_drain

        with SweepBroker(_tiny_tasks(2)) as broker:
            host, port = broker.address
            drain = threading.Event()
            done = {}

            def serve():
                done["completed"] = run_worker(
                    host, port, WorkerOptions(worker_id="w0",
                                              handle_signals=False,
                                              drain_event=drain))

            thread = threading.Thread(target=serve, daemon=True)
            thread.start()
            _wait_until(lambda: broker.completed_count >= 1,
                        message="first result")
            request_drain(host, port, ["w0"])
            thread.join(timeout=10.0)
            assert not thread.is_alive()
            _wait_until(lambda: broker.drains_completed == 1,
                        message="drain settled")
            assert broker.drain_requeued_tasks == 0
            assert done["completed"] >= 1

    def test_worker_drain_event_announces_self_drain(self):
        """The drain_event / signal path: the worker stops at the next batch
        boundary, tells the broker, and the disconnect settles gracefully."""
        from repro.distributed.worker import WorkerOptions, run_worker

        with SweepBroker(_tiny_tasks(4)) as broker:
            host, port = broker.address
            drain = threading.Event()
            completions = []
            original_callback = broker.callback

            def stop_after_first(task, result):
                completions.append(task)
                drain.set()                      # "SIGTERM" mid-sweep

            broker.callback = stop_after_first
            completed = run_worker(host, port,
                                   WorkerOptions(worker_id="sig",
                                                 handle_signals=False,
                                                 drain_event=drain))
            broker.callback = original_callback
            assert 1 <= completed < 4            # stopped early, cleanly
            _wait_until(lambda: broker.drains_completed == 1,
                        message="self drain settled")
            assert broker.drains_requested == 1
            assert broker.drain_requeued_tasks == 0
            assert broker.requeued_tasks == 0
