"""Tests for repro.utils.timer and repro.utils.metrics."""

import time

import pytest

from repro.utils.metrics import (
    ExponentialMovingAverage,
    MovingAverage,
    RunningStats,
    SolvedCriterion,
)
from repro.utils.timer import OPERATION_LABELS, TimeBreakdown, Timer, timed


class TestTimer:
    def test_measures_elapsed_time(self):
        timer = Timer()
        timer.start()
        time.sleep(0.01)
        elapsed = timer.stop()
        assert elapsed >= 0.009

    def test_double_start_raises(self):
        timer = Timer().start()
        with pytest.raises(RuntimeError):
            timer.start()

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_context_manager(self):
        with timed() as timer:
            time.sleep(0.005)
        assert timer.elapsed >= 0.004
        assert not timer.running

    def test_reset(self):
        timer = Timer().start()
        timer.stop()
        timer.reset()
        assert timer.elapsed == 0.0


class TestTimeBreakdown:
    def test_add_and_total(self):
        breakdown = TimeBreakdown()
        breakdown.add("seq_train", 1.5)
        breakdown.add("predict_seq", 0.5)
        breakdown.add("seq_train", 0.5, count=3)
        assert breakdown.total() == pytest.approx(2.5)
        assert breakdown.seconds["seq_train"] == pytest.approx(2.0)
        assert breakdown.counts["seq_train"] == 4

    def test_negative_seconds_rejected(self):
        with pytest.raises(ValueError):
            TimeBreakdown().add("x", -1.0)

    def test_fraction(self):
        breakdown = TimeBreakdown()
        breakdown.add("a", 3.0)
        breakdown.add("b", 1.0)
        assert breakdown.fraction("a") == pytest.approx(0.75)
        assert breakdown.fraction("missing") == 0.0

    def test_fraction_empty(self):
        assert TimeBreakdown().fraction("a") == 0.0

    def test_merge_keeps_both(self):
        a = TimeBreakdown()
        a.add("x", 1.0)
        b = TimeBreakdown()
        b.add("x", 2.0)
        b.add("y", 1.0)
        merged = a.merge(b)
        assert merged.seconds["x"] == pytest.approx(3.0)
        assert merged.seconds["y"] == pytest.approx(1.0)
        # originals untouched
        assert a.seconds["x"] == pytest.approx(1.0)

    def test_scaled(self):
        breakdown = TimeBreakdown()
        breakdown.add("x", 2.0)
        scaled = breakdown.scaled(0.5)
        assert scaled.seconds["x"] == pytest.approx(1.0)

    def test_scaled_negative_rejected(self):
        with pytest.raises(ValueError):
            TimeBreakdown().scaled(-1.0)

    def test_measure_context(self):
        breakdown = TimeBreakdown()
        with breakdown.measure("op"):
            time.sleep(0.005)
        assert breakdown.seconds["op"] >= 0.004
        assert breakdown.counts["op"] == 1

    def test_paper_operation_labels_present(self):
        assert "seq_train" in OPERATION_LABELS
        assert "train_DQN" in OPERATION_LABELS
        assert len(OPERATION_LABELS) == 7


class TestMovingAverage:
    def test_window_average(self):
        avg = MovingAverage(window=3)
        for value in [1.0, 2.0, 3.0, 4.0]:
            avg.add(value)
        assert avg.value == pytest.approx(3.0)   # (2 + 3 + 4) / 3

    def test_empty_average_zero(self):
        assert MovingAverage(5).value == 0.0

    def test_full_flag(self):
        avg = MovingAverage(window=2)
        avg.add(1.0)
        assert not avg.full
        avg.add(2.0)
        assert avg.full

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            MovingAverage(0)

    def test_reset(self):
        avg = MovingAverage(3)
        avg.add(10.0)
        avg.reset()
        assert avg.value == 0.0
        assert avg.count == 0


class TestExponentialMovingAverage:
    def test_first_value_is_exact(self):
        ema = ExponentialMovingAverage(0.5)
        assert ema.add(10.0) == pytest.approx(10.0)

    def test_smoothing(self):
        ema = ExponentialMovingAverage(0.5)
        ema.add(0.0)
        assert ema.add(10.0) == pytest.approx(5.0)

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            ExponentialMovingAverage(0.0)
        with pytest.raises(ValueError):
            ExponentialMovingAverage(1.5)


class TestRunningStats:
    def test_matches_numpy(self, rng):
        values = rng.normal(3.0, 2.0, size=500)
        stats = RunningStats()
        stats.extend(values)
        assert stats.mean == pytest.approx(float(values.mean()), rel=1e-10)
        assert stats.std == pytest.approx(float(values.std()), rel=1e-8)
        assert stats.min == pytest.approx(float(values.min()))
        assert stats.max == pytest.approx(float(values.max()))

    def test_empty_stats(self):
        stats = RunningStats()
        assert stats.mean == 0.0
        assert stats.variance == 0.0


class TestSolvedCriterion:
    def test_solves_when_window_full_and_above_threshold(self):
        criterion = SolvedCriterion(threshold=10.0, window=5)
        results = [criterion.update(20.0) for _ in range(5)]
        assert results[-1] is True
        assert criterion.solved

    def test_not_solved_before_window_full(self):
        criterion = SolvedCriterion(threshold=10.0, window=5)
        for _ in range(4):
            assert criterion.update(100.0) is False

    def test_not_solved_below_threshold(self):
        criterion = SolvedCriterion(threshold=195.0, window=3)
        for _ in range(10):
            criterion.update(50.0)
        assert not criterion.solved

    def test_exhausted_after_max_episodes(self):
        criterion = SolvedCriterion(threshold=100.0, window=2, max_episodes=3)
        for _ in range(3):
            criterion.update(1.0)
        assert criterion.exhausted

    def test_history_recorded(self):
        criterion = SolvedCriterion(threshold=10.0, window=2)
        criterion.update(5.0)
        criterion.update(7.0)
        assert criterion.history == [5.0, 7.0]

    def test_reset(self):
        criterion = SolvedCriterion(threshold=10.0, window=2)
        criterion.update(100.0)
        criterion.reset()
        assert criterion.episodes == 0
        assert criterion.history == []
        assert not criterion.solved

    def test_cartpole_default_matches_convention(self):
        criterion = SolvedCriterion()
        assert criterion.threshold == 195.0
        assert criterion.window == 100
        assert criterion.max_episodes == 50_000
