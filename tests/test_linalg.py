"""Tests for the repro.linalg numerical kernels."""

import numpy as np
import pytest
import scipy.linalg

from repro.linalg.incremental import (
    RecursiveInverse,
    beta_update,
    sherman_morrison_update,
    woodbury_update,
)
from repro.linalg.pseudo_inverse import (
    condition_number,
    effective_rank,
    pinv,
    regularized_gram_inverse,
    ridge_path,
    ridge_solve,
)
from repro.linalg.solvers import (
    is_positive_definite,
    is_symmetric,
    solve_posdef,
    solve_small_system,
    symmetrize,
)
from repro.linalg.spectral import (
    dominant_singular_vectors,
    frobenius_norm,
    lipschitz_constant_relu_network,
    power_iteration,
    spectral_norm,
    spectral_normalize,
)


class TestPseudoInverse:
    def test_pinv_matches_numpy_svd(self, rng):
        matrix = rng.normal(size=(10, 6))
        np.testing.assert_allclose(pinv(matrix), np.linalg.pinv(matrix), atol=1e-10)

    def test_pinv_qr_full_rank(self, rng):
        matrix = rng.normal(size=(12, 5))
        np.testing.assert_allclose(pinv(matrix, method="qr"), np.linalg.pinv(matrix), atol=1e-9)

    def test_pinv_qr_wide_matrix(self, rng):
        matrix = rng.normal(size=(4, 9))
        np.testing.assert_allclose(pinv(matrix, method="qr"), np.linalg.pinv(matrix), atol=1e-9)

    def test_pinv_rank_deficient(self, rng):
        base = rng.normal(size=(8, 2))
        matrix = base @ rng.normal(size=(2, 5))   # rank 2
        result = pinv(matrix)
        # Moore-Penrose conditions
        np.testing.assert_allclose(matrix @ result @ matrix, matrix, atol=1e-8)
        np.testing.assert_allclose(result @ matrix @ result, result, atol=1e-8)

    def test_pinv_unknown_method(self, rng):
        with pytest.raises(ValueError):
            pinv(rng.normal(size=(3, 3)), method="lu")

    def test_regularized_gram_inverse_identity_check(self, rng):
        h = rng.normal(size=(50, 8))
        delta = 0.5
        p = regularized_gram_inverse(h, delta)
        np.testing.assert_allclose(p @ (h.T @ h + delta * np.eye(8)), np.eye(8), atol=1e-8)

    def test_regularized_gram_inverse_negative_delta(self, rng):
        with pytest.raises(ValueError):
            regularized_gram_inverse(rng.normal(size=(5, 3)), -1.0)

    def test_ridge_solve_matches_closed_form(self, rng):
        h = rng.normal(size=(40, 6))
        t = rng.normal(size=(40, 2))
        delta = 1.0
        beta = ridge_solve(h, t, delta)
        expected = np.linalg.solve(h.T @ h + delta * np.eye(6), h.T @ t)
        np.testing.assert_allclose(beta, expected, atol=1e-9)

    def test_ridge_solve_shape_mismatch(self, rng):
        with pytest.raises(ValueError):
            ridge_solve(rng.normal(size=(5, 3)), rng.normal(size=(4, 1)))

    def test_ridge_path_monotone_shrinkage(self, rng):
        h = rng.normal(size=(60, 5))
        t = rng.normal(size=(60, 1))
        deltas = np.array([0.0, 0.1, 1.0, 10.0])
        betas = ridge_path(h, t, deltas)
        norms = [np.linalg.norm(b) for b in betas]
        assert norms == sorted(norms, reverse=True)

    def test_condition_number_identity(self):
        assert condition_number(np.eye(4)) == pytest.approx(1.0)

    def test_effective_rank(self, rng):
        base = rng.normal(size=(10, 3))
        matrix = base @ rng.normal(size=(3, 7))
        assert effective_rank(matrix) == 3


class TestSpectral:
    def test_spectral_norm_matches_scipy(self, rng):
        matrix = rng.normal(size=(7, 12))
        assert spectral_norm(matrix) == pytest.approx(scipy.linalg.svdvals(matrix)[0])

    def test_power_iteration_close_to_svd(self, rng):
        matrix = rng.normal(size=(20, 15))
        sigma, u, v = power_iteration(matrix, n_iterations=500, tol=1e-14, rng=rng)
        assert sigma == pytest.approx(scipy.linalg.svdvals(matrix)[0], rel=1e-6)
        # u and v are unit singular vectors
        assert np.linalg.norm(u) == pytest.approx(1.0, rel=1e-6)
        assert np.linalg.norm(v) == pytest.approx(1.0, rel=1e-6)

    def test_spectral_norm_power_method_option(self, rng):
        matrix = rng.normal(size=(9, 9))
        assert spectral_norm(matrix, method="power", n_iterations=500) == pytest.approx(
            spectral_norm(matrix, method="svd"), rel=1e-5
        )

    def test_spectral_normalize_unit_norm(self, rng):
        matrix = rng.uniform(0, 1, size=(5, 32))
        normalized, original = spectral_normalize(matrix)
        assert spectral_norm(normalized) == pytest.approx(1.0, rel=1e-10)
        assert original == pytest.approx(spectral_norm(matrix))

    def test_spectral_normalize_custom_target(self, rng):
        matrix = rng.normal(size=(4, 4))
        normalized, _ = spectral_normalize(matrix, target=2.5)
        assert spectral_norm(normalized) == pytest.approx(2.5, rel=1e-10)

    def test_spectral_normalize_zero_matrix(self):
        normalized, sigma = spectral_normalize(np.zeros((3, 3)))
        assert sigma == 0.0
        np.testing.assert_array_equal(normalized, np.zeros((3, 3)))

    def test_spectral_normalize_invalid_target(self, rng):
        with pytest.raises(ValueError):
            spectral_normalize(rng.normal(size=(2, 2)), target=0.0)

    def test_dominant_singular_vectors(self, rng):
        matrix = rng.normal(size=(6, 4))
        sigma, u, v = dominant_singular_vectors(matrix)
        np.testing.assert_allclose(matrix @ v, sigma * u, atol=1e-10)

    def test_frobenius_bounds_spectral(self, rng):
        # Relation 13 of the paper: sigma_max(A)^2 <= ||A||_F^2
        matrix = rng.normal(size=(8, 5))
        assert spectral_norm(matrix) <= frobenius_norm(matrix) + 1e-12

    def test_lipschitz_constant_product(self):
        w1 = np.diag([2.0, 2.0])
        w2 = np.diag([3.0, 3.0])
        assert lipschitz_constant_relu_network([w1, w2]) == pytest.approx(6.0)


class TestIncremental:
    def test_sherman_morrison_matches_direct_inverse(self, rng):
        h_rows = rng.normal(size=(30, 6))
        delta = 0.3
        p = np.linalg.inv(h_rows[:10].T @ h_rows[:10] + delta * np.eye(6))
        for i in range(10, 30):
            p = sherman_morrison_update(p, h_rows[i])
        expected = np.linalg.inv(h_rows.T @ h_rows + delta * np.eye(6))
        np.testing.assert_allclose(p, expected, atol=1e-8)

    def test_sherman_morrison_dimension_check(self, rng):
        with pytest.raises(ValueError):
            sherman_morrison_update(np.eye(4), np.ones(3))

    def test_woodbury_matches_direct_inverse(self, rng):
        h = rng.normal(size=(40, 5))
        p = np.linalg.inv(h[:20].T @ h[:20] + 0.1 * np.eye(5))
        p = woodbury_update(p, h[20:])
        expected = np.linalg.inv(h.T @ h + 0.1 * np.eye(5))
        np.testing.assert_allclose(p, expected, atol=1e-8)

    def test_woodbury_single_row_equals_sherman_morrison(self, rng):
        p = np.linalg.inv(rng.normal(size=(12, 4)).T @ rng.normal(size=(12, 4)) + np.eye(4))
        row = rng.normal(size=4)
        np.testing.assert_allclose(woodbury_update(p, row.reshape(1, -1)),
                                   sherman_morrison_update(p, row), atol=1e-12)

    def test_recursive_inverse_equals_batch_ridge(self, rng):
        """Sequential OS-ELM updates must reach the same beta as one batch solve."""
        n_hidden, n_out = 8, 2
        h_all = rng.normal(size=(100, n_hidden))
        t_all = rng.normal(size=(100, n_out))
        delta = 0.5
        p0 = np.linalg.inv(h_all[:20].T @ h_all[:20] + delta * np.eye(n_hidden))
        beta0 = p0 @ h_all[:20].T @ t_all[:20]
        tracker = RecursiveInverse(p0, beta0)
        for i in range(20, 100):
            tracker.update(h_all[i:i + 1], t_all[i:i + 1])
        expected_beta = np.linalg.solve(h_all.T @ h_all + delta * np.eye(n_hidden),
                                        h_all.T @ t_all)
        np.testing.assert_allclose(tracker.beta, expected_beta, atol=1e-7)
        assert tracker.updates == 80

    def test_recursive_inverse_chunked_updates(self, rng):
        h_all = rng.normal(size=(60, 6))
        t_all = rng.normal(size=(60, 1))
        p0 = np.linalg.inv(h_all[:12].T @ h_all[:12] + np.eye(6))
        beta0 = p0 @ h_all[:12].T @ t_all[:12]
        tracker = RecursiveInverse(p0, beta0)
        for start in range(12, 60, 8):
            tracker.update(h_all[start:start + 8], t_all[start:start + 8])
        expected = np.linalg.solve(h_all.T @ h_all + np.eye(6), h_all.T @ t_all)
        np.testing.assert_allclose(tracker.beta, expected, atol=1e-7)

    def test_recursive_inverse_validation(self):
        with pytest.raises(ValueError):
            RecursiveInverse(np.zeros((3, 4)), np.zeros((3, 1)))
        with pytest.raises(ValueError):
            RecursiveInverse(np.eye(3), np.zeros((4, 1)))

    def test_recursive_copy_is_independent(self, rng):
        tracker = RecursiveInverse(np.eye(3), np.zeros((3, 1)))
        clone = tracker.copy()
        clone.update(rng.normal(size=(1, 3)), rng.normal(size=(1, 1)))
        assert tracker.updates == 0
        np.testing.assert_array_equal(tracker.beta, np.zeros((3, 1)))

    def test_beta_update_formula(self, rng):
        beta = rng.normal(size=(4, 1))
        p_new = np.eye(4) * 0.5
        h = rng.normal(size=(1, 4))
        t = rng.normal(size=(1, 1))
        result = beta_update(beta, p_new, h, t)
        expected = beta + p_new @ h.T @ (t - h @ beta)
        np.testing.assert_allclose(result, expected)

    def test_nonpositive_denominator_raises(self):
        # A non-positive-definite P triggers the LinAlgError guard.
        p = -np.eye(3)
        with pytest.raises(np.linalg.LinAlgError):
            sherman_morrison_update(p, np.ones(3))


class TestSolvers:
    def test_solve_posdef(self, rng):
        a = rng.normal(size=(6, 6))
        spd = a @ a.T + 6 * np.eye(6)
        b = rng.normal(size=(6, 2))
        np.testing.assert_allclose(solve_posdef(spd, b), np.linalg.solve(spd, b), atol=1e-9)

    def test_solve_small_1x1(self):
        np.testing.assert_allclose(solve_small_system(np.array([[4.0]]), np.array([8.0])),
                                   np.array([2.0]))

    def test_solve_small_1x1_singular(self):
        with pytest.raises(np.linalg.LinAlgError):
            solve_small_system(np.array([[0.0]]), np.array([1.0]))

    def test_solve_small_2x2(self, rng):
        a = rng.normal(size=(2, 2)) + 2 * np.eye(2)
        b = rng.normal(size=2)
        np.testing.assert_allclose(solve_small_system(a, b), np.linalg.solve(a, b), atol=1e-10)

    def test_solve_small_general(self, rng):
        a = rng.normal(size=(5, 5)) + 5 * np.eye(5)
        b = rng.normal(size=(5, 3))
        np.testing.assert_allclose(solve_small_system(a, b), np.linalg.solve(a, b), atol=1e-9)

    def test_is_symmetric(self, rng):
        a = rng.normal(size=(4, 4))
        assert is_symmetric(a + a.T)
        assert not is_symmetric(a + np.triu(np.ones((4, 4)), 1))

    def test_is_positive_definite(self, rng):
        a = rng.normal(size=(5, 5))
        assert is_positive_definite(a @ a.T + 5 * np.eye(5))
        assert not is_positive_definite(-np.eye(5))

    def test_symmetrize(self, rng):
        a = rng.normal(size=(3, 3))
        s = symmetrize(a)
        assert is_symmetric(s)
        np.testing.assert_allclose(s, (a + a.T) / 2)
