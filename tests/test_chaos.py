"""Chaos tests: deterministic fault injection + SIGKILL broker recovery.

`TestFaultPlan` pins the fault-injection machinery itself (a chaos harness
that silently injects nothing would make every "survived the chaos" test
vacuous).  `TestWorkerReconnect` drives a real ``run_worker`` loop through
dropped connections against an in-process broker.  `TestChaosEndToEnd` is
the headline scenario: a journaled broker subprocess SIGKILLed mid-sweep,
restarted from its journal, with workers reconnecting through injected
faults — and the summary CSV byte-identical to the serial backend's.
"""

import socket
import threading
import time

import pytest

from repro.api import Budget, ExperimentSpec, run
from repro.chaos import (
    BrokerHarness,
    FaultPlan,
    FaultyConnectionError,
    free_port,
    run_workers_through,
)
from repro.distributed import protocol
from repro.distributed.broker import SweepBroker
from repro.distributed.journal import SweepJournal
from repro.distributed.worker import WorkerOptions, run_worker
from repro.parallel.sweep import SweepSpec
from repro.rl.runner import TrainingConfig
from repro.utils.retry import RetryError, RetryPolicy


def _tiny_tasks(n_seeds=2):
    spec = SweepSpec(designs=("OS-ELM-L2",), n_seeds=n_seeds, n_hidden=8,
                     training=TrainingConfig(max_episodes=3), root_seed=99)
    return spec.tasks()


def _pair(plan):
    """A socketpair with the left end wrapped by ``plan``."""
    left, right = socket.socketpair()
    return plan.wrap(left), right


class TestFaultPlan:
    def test_spec_roundtrip(self):
        plan = FaultPlan.from_spec("drop_after_frames=8,drop_every=5,seed=7")
        assert plan.drop_after_frames == 8
        assert plan.drop_every == 5
        assert plan.seed == 7
        assert FaultPlan.from_spec(plan.to_spec()) == plan
        assert FaultPlan.from_spec("") == FaultPlan()

    def test_spec_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="accepted keys"):
            FaultPlan.from_spec("drop_frames=3")

    def test_validation(self):
        with pytest.raises(ValueError, match="drop_after_frames"):
            FaultPlan(drop_after_frames=-1)
        with pytest.raises(ValueError, match="delay_seconds"):
            FaultPlan(delay_seconds=-0.1)

    def test_default_plan_is_transparent(self):
        plan = FaultPlan()
        wrapped, right = _pair(plan)
        try:
            for index in range(20):
                protocol.send_message(wrapped, protocol.HEARTBEAT, index)
                kind, payload = protocol.recv_message(right)
                assert kind == protocol.HEARTBEAT and payload == index
        finally:
            wrapped.close()
            right.close()
        snap = plan.snapshot()
        assert snap["connections_established"] == 1
        assert snap["connections_dropped"] == 0
        assert snap["frames_truncated"] == 0

    def test_drop_after_frames_severs_the_connection(self):
        plan = FaultPlan(drop_after_frames=2)
        wrapped, right = _pair(plan)
        try:
            protocol.send_message(wrapped, protocol.GET, None)
            protocol.send_message(wrapped, protocol.GET, None)
            with pytest.raises(FaultyConnectionError, match="dropped"):
                protocol.send_message(wrapped, protocol.GET, None)
            # The connection stays dead; it does not resurrect.
            with pytest.raises(FaultyConnectionError):
                wrapped.sendall(b"zombie")
            # The peer sees a clean EOF after the two delivered frames.
            assert protocol.recv_message(right)[0] == protocol.GET
            assert protocol.recv_message(right)[0] == protocol.GET
            with pytest.raises(ConnectionError):
                protocol.recv_message(right)
        finally:
            right.close()
        assert plan.snapshot()["connections_dropped"] == 1

    def test_drop_every_affects_only_matching_connections(self):
        plan = FaultPlan(drop_after_frames=1, drop_every=2)
        first, first_peer = _pair(plan)     # connection 1: unaffected
        second, second_peer = _pair(plan)   # connection 2: drops
        try:
            for _ in range(5):
                protocol.send_message(first, protocol.HEARTBEAT)
            protocol.send_message(second, protocol.HEARTBEAT)
            with pytest.raises(FaultyConnectionError):
                protocol.send_message(second, protocol.HEARTBEAT)
        finally:
            first.close()
            first_peer.close()
            second_peer.close()

    def test_truncation_leaves_peer_a_partial_frame(self):
        """The peer of a truncated frame observes EOF mid-frame — a plain
        ConnectionError (outage), never a ProtocolError (violation)."""
        plan = FaultPlan(truncate_after_frames=1)
        wrapped, right = _pair(plan)
        try:
            with pytest.raises(FaultyConnectionError, match="truncated"):
                protocol.send_message(wrapped, protocol.RESULT,
                                      (0, "x" * 256, "distributed"))
            with pytest.raises(ConnectionError) as caught:
                protocol.recv_message(right)
            assert not isinstance(caught.value, protocol.ProtocolError)
        finally:
            right.close()
        assert plan.snapshot()["frames_truncated"] == 1

    def test_refuse_connects_then_allows(self):
        server = socket.socket()
        server.bind(("127.0.0.1", 0))
        server.listen(2)
        host, port = server.getsockname()[:2]
        plan = FaultPlan(refuse_connects=2)
        try:
            for _ in range(2):
                with pytest.raises(ConnectionRefusedError, match="fault plan"):
                    plan.connect(host, port, 2.0)
            sock = plan.connect(host, port, 2.0)
            sock.close()
        finally:
            server.close()
        snap = plan.snapshot()
        assert snap["connects_attempted"] == 3
        assert snap["connects_refused"] == 2
        assert snap["connections_established"] == 1

    def test_jittered_drop_frames_are_seed_deterministic(self):
        def drop_schedule(seed):
            plan = FaultPlan(seed=seed, drop_after_frames=64,
                             jitter_frames=True)
            schedule = []
            for _ in range(6):
                wrapped, right = _pair(plan)
                schedule.append(wrapped._drop_at)
                wrapped.close()
                right.close()
            return schedule

        assert drop_schedule(7) == drop_schedule(7)
        assert drop_schedule(7) != drop_schedule(8)   # 64^6 odds of collision


class TestWorkerReconnect:
    def test_worker_reconnects_through_dropped_connections(self):
        """Every connection dies after 6 frames; the worker still drains the
        grid by reconnecting, redelivering stranded results on the way."""
        plan = FaultPlan(drop_after_frames=6)
        policy = RetryPolicy(max_attempts=10, base_delay=0.01, max_delay=0.1)
        with SweepBroker(_tiny_tasks(3)) as broker:
            host, port = broker.address
            completed = run_worker(
                host, port,
                WorkerOptions(worker_id="phoenix", handle_signals=False,
                              reconnect=policy, idle_timeout=10.0,
                              connect_factory=plan.connect))
            assert broker.join(timeout=5.0)
            assert completed == 3
            assert broker.worker_reconnections >= 1
            assert broker.stats_snapshot()["counters"][
                "worker_reconnections"] == broker.worker_reconnections
            # One worker identity throughout: no ghost workers accumulated.
            assert list(broker.workers_seen) == ["phoenix"]
        assert plan.snapshot()["connections_dropped"] >= 1

    def test_exhausted_policy_raises_retry_error(self):
        port = free_port()                   # nothing ever listens here
        policy = RetryPolicy(max_attempts=3, base_delay=0.01, max_delay=0.05)
        with pytest.raises(RetryError) as caught:
            run_worker("127.0.0.1", port,
                       WorkerOptions(worker_id="hopeless",
                                     handle_signals=False,
                                     connect_timeout=0.5, reconnect=policy))
        assert caught.value.attempts == 3

    def test_no_reconnect_policy_raises_on_first_connect_failure(self):
        port = free_port()
        with pytest.raises(OSError):
            run_worker("127.0.0.1", port,
                       WorkerOptions(worker_id="legacy",
                                     handle_signals=False,
                                     connect_timeout=0.5))

    def test_idle_timeout_unsticks_a_silent_broker(self):
        """A broker that WELCOMEs then never answers again must not hang the
        worker forever (the pre-1.8 infinite-block hazard): the idle timeout
        routes into the reconnect path, which here exhausts quickly."""
        server = socket.socket()
        server.bind(("127.0.0.1", 0))
        server.listen(1)
        host, port = server.getsockname()[:2]
        hold = []

        def silent_broker():
            connection, _ = server.accept()
            hold.append(connection)          # keep it open, answer HELLO only
            kind, _payload = protocol.recv_message(connection)
            assert kind == protocol.HELLO
            protocol.send_message(connection, protocol.WELCOME, {"tasks": 1})

        thread = threading.Thread(target=silent_broker, daemon=True)
        thread.start()
        policy = RetryPolicy(max_attempts=2, base_delay=0.01)
        started = time.monotonic()
        try:
            with pytest.raises(RetryError):
                run_worker(host, port,
                           WorkerOptions(worker_id="unstuck",
                                         handle_signals=False,
                                         idle_timeout=0.3,
                                         connect_timeout=0.5,
                                         reconnect=policy))
        finally:
            server.close()
            for connection in hold:
                connection.close()
        # Bounded exit: one 0.3s idle timeout + a short retry, not a hang.
        assert time.monotonic() - started < 10.0
        thread.join(timeout=2.0)


class TestChaosEndToEnd:
    def test_sigkilled_broker_resumes_byte_identical(self, tmp_path):
        """The headline crash-safety guarantee, end to end: SIGKILL the
        journaled broker mid-sweep, restart it on the same journal and port,
        let workers reconnect through injected connection drops, and the
        finished sweep's summary CSV is byte-identical to the serial
        backend's — zero lost tasks, zero duplicated rows."""
        spec = ExperimentSpec(name="chaos-e2e", designs=("OS-ELM-L2",),
                              hidden_sizes=(8,), n_seeds=6,
                              budget=Budget(max_episodes=5))
        reference = run(spec, backend="serial",
                        out=str(tmp_path / "ref-store"))
        reference_csv = reference.summary_csv()

        journal = tmp_path / "sweep.journal"
        chaos_store = tmp_path / "chaos-store"
        # Every connection dies after 4 frames — enough for at least one
        # result per connection (HELLO + GET + RESULT), so progress is
        # guaranteed and so is at least one drop before the short grid
        # drains.  The per-outage deadline spans the broker restart gap but
        # bounds the final retry storm once the drained broker exits.
        plan = FaultPlan(drop_after_frames=4, seed=7, delay_seconds=0.02)
        policy = RetryPolicy(max_attempts=60, base_delay=0.05, max_delay=0.5,
                             deadline=15.0)
        harness = BrokerHarness(spec.tasks(), journal_path=journal,
                                store_root=chaos_store,
                                heartbeat_timeout=5.0)
        with harness:
            workers = run_workers_through(
                harness, 2,
                make_options=lambda i: WorkerOptions(
                    worker_id=f"chaos-{i}", handle_signals=False,
                    reconnect=policy, idle_timeout=10.0,
                    heartbeat_interval=0.5, connect_factory=plan.connect))
            harness.wait_for_deliveries(1, timeout=120.0)
            harness.kill()                   # SIGKILL: no flush, no goodbye
            harness.start()                  # replays the journal, same port
            harness.wait_until_exit(timeout=180.0)
            for worker in workers:
                worker.join(timeout=60.0)
                assert not worker.alive
                # A worker may exhaust its retries racing the broker's final
                # exit; any other failure is a real bug.
                if worker.error is not None:
                    assert isinstance(worker.error, RetryError), worker.error

        assert harness.starts == 2 and harness.kills == 1
        assert SweepJournal(journal).load().sessions >= 2
        assert plan.snapshot()["connections_dropped"] >= 1

        # cache_only raises if even one trial is missing from the store:
        # this single call is the zero-lost-tasks assertion.
        recovered = run(spec, backend="serial", out=str(chaos_store),
                        cache_only=True)
        assert recovered.summary_csv() == reference_csv
        assert all(record.backend_used == "distributed"
                   for record in recovered.trials)
