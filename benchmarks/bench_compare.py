"""Diff a fresh bench JSON against the committed ``BENCH_parallel.json``.

The committed snapshot (generated with
``bench_parallel_throughput.py --smoke --json benchmarks/BENCH_parallel.json``)
pins two things:

* the **schema** — a fresh run must report the same backends and the same
  document shape, so a refactor cannot silently drop a measured engine;
* a **collapse tripwire** — each backend's steps/sec must stay above
  ``--min-ratio`` (default 0.2) of the committed rate.  CI machines are
  noisy and share cores, so this is deliberately generous: it catches a
  10x regression (an accidentally serialized vectorized path, a busy-wait
  in the broker), not a 10% one.  Absolute rates are machine-dependent
  and are *not* asserted.

Run with::

    PYTHONPATH=src python benchmarks/bench_parallel_throughput.py --smoke \\
        --json /tmp/bench_fresh.json
    python benchmarks/bench_compare.py /tmp/bench_fresh.json

Exit code 0 on pass, 1 with a per-backend report on failure.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

BASELINE = Path(__file__).resolve().parent / "BENCH_parallel.json"


def compare(fresh_path: str, baseline_path: str, min_ratio: float) -> int:
    fresh = json.loads(Path(fresh_path).read_text(encoding="utf-8"))
    baseline = json.loads(Path(baseline_path).read_text(encoding="utf-8"))
    problems = []

    missing_keys = set(baseline) - set(fresh)
    if missing_keys:
        problems.append(f"fresh document lost top-level keys: "
                        f"{sorted(missing_keys)}")

    base_rates = baseline.get("steps_per_sec", {})
    fresh_rates = fresh.get("steps_per_sec", {})
    missing = set(base_rates) - set(fresh_rates)
    if missing:
        problems.append(f"fresh run no longer measures: {sorted(missing)}")

    print(f"{'backend':<16} {'baseline':>12} {'fresh':>12} {'ratio':>8}")
    for name in sorted(set(base_rates) & set(fresh_rates)):
        base, now = float(base_rates[name]), float(fresh_rates[name])
        ratio = now / base if base else float("inf")
        flag = "" if ratio >= min_ratio else "  <-- COLLAPSED"
        print(f"{name:<16} {base:>12.1f} {now:>12.1f} {ratio:>8.2f}{flag}")
        if ratio < min_ratio:
            problems.append(
                f"{name}: {now:.0f} steps/s is below {min_ratio:.0%} of the "
                f"committed {base:.0f} steps/s")

    if fresh.get("sync_subproc_identical") is not True:
        problems.append("sync/subproc trajectory identity no longer holds")

    if ("autoscale_serial_vectorized_identical" in baseline
            and fresh.get("autoscale_serial_vectorized_identical") is not True):
        problems.append("Autoscale-v0 serial/lock-step curve identity no "
                        "longer holds")

    if problems:
        print("\nbench comparison FAILED:")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print(f"\nall backends within {min_ratio:.0%} tripwire of "
          f"{baseline_path}: OK")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh", help="bench JSON produced by this run")
    parser.add_argument("--baseline", default=str(BASELINE),
                        help="committed snapshot to diff against")
    parser.add_argument("--min-ratio", type=float, default=0.2,
                        help="minimum fresh/baseline steps-per-sec ratio "
                             "(default 0.2: a collapse tripwire, not a "
                             "noise-level gate)")
    args = parser.parse_args(argv)
    return compare(args.fresh, args.baseline, args.min_ratio)


if __name__ == "__main__":
    sys.exit(main())
