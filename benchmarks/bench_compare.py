"""Diff a fresh bench JSON against its committed ``BENCH_*.json`` snapshot.

Two document families are understood, auto-detected from the fresh
document's shape:

* **parallel** (``bench_parallel_throughput.py --smoke``, committed as
  ``BENCH_parallel.json``): per-backend ``steps_per_sec`` rates plus the
  sync/subproc trajectory-identity flag;
* **serving** (``bench_serving.py --smoke``, committed as
  ``BENCH_serving.json``, detected by its ``latency`` / ``pipelined``
  keys): per-(clients, max_batch) latency/throughput rows plus the
  served-equals-offline identity flag.

Each comparison pins two things:

* the **schema** — a fresh run must report the same backends (or client
  grid) and the same document shape, so a refactor cannot silently drop
  a measured configuration;
* a **collapse tripwire** — throughput must stay above ``--min-ratio``
  (default 0.2) of the committed rate, and serving p50 latency must not
  blow past the committed value by more than ``1 / min_ratio``.  CI
  machines are noisy and share cores, so this is deliberately generous:
  it catches a 10x regression (an accidentally serialized vectorized
  path, a busy-wait in the broker, a micro-batcher that stopped
  batching), not a 10% one.  Absolute rates are machine-dependent and
  are *not* asserted.

Run with::

    PYTHONPATH=src python benchmarks/bench_parallel_throughput.py --smoke \\
        --json /tmp/bench_fresh.json
    python benchmarks/bench_compare.py /tmp/bench_fresh.json

    PYTHONPATH=src python benchmarks/bench_serving.py --smoke \\
        --json /tmp/bench_serving.json
    python benchmarks/bench_compare.py /tmp/bench_serving.json

Exit code 0 on pass, 1 with a per-row report on failure.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List

_HERE = Path(__file__).resolve().parent
BASELINE = _HERE / "BENCH_parallel.json"
BASELINE_SERVING = _HERE / "BENCH_serving.json"


def _is_serving(document: Dict[str, object]) -> bool:
    return "latency" in document or "pipelined" in document


def _compare_parallel(fresh: Dict[str, object], baseline: Dict[str, object],
                      min_ratio: float) -> List[str]:
    problems: List[str] = []
    base_rates = baseline.get("steps_per_sec", {})
    fresh_rates = fresh.get("steps_per_sec", {})
    missing = set(base_rates) - set(fresh_rates)
    if missing:
        problems.append(f"fresh run no longer measures: {sorted(missing)}")

    print(f"{'backend':<16} {'baseline':>12} {'fresh':>12} {'ratio':>8}")
    for name in sorted(set(base_rates) & set(fresh_rates)):
        base, now = float(base_rates[name]), float(fresh_rates[name])
        ratio = now / base if base else float("inf")
        flag = "" if ratio >= min_ratio else "  <-- COLLAPSED"
        print(f"{name:<16} {base:>12.1f} {now:>12.1f} {ratio:>8.2f}{flag}")
        if ratio < min_ratio:
            problems.append(
                f"{name}: {now:.0f} steps/s is below {min_ratio:.0%} of the "
                f"committed {base:.0f} steps/s")

    if fresh.get("sync_subproc_identical") is not True:
        problems.append("sync/subproc trajectory identity no longer holds")

    if ("autoscale_serial_vectorized_identical" in baseline
            and fresh.get("autoscale_serial_vectorized_identical") is not True):
        problems.append("Autoscale-v0 serial/lock-step curve identity no "
                        "longer holds")
    return problems


def _row_key(row: Dict[str, object]) -> str:
    if "clients" in row:
        return f"c{row.get('clients')}/b{row.get('max_batch')}"
    return f"pipelined/b{row.get('max_batch')}"


def _compare_serving(fresh: Dict[str, object], baseline: Dict[str, object],
                     min_ratio: float) -> List[str]:
    problems: List[str] = []
    print(f"{'config':<16} {'metric':<16} {'baseline':>12} {'fresh':>12} "
          f"{'ratio':>8}")
    for section in ("latency", "pipelined"):
        base_rows = {_row_key(r): r for r in baseline.get(section, [])}
        fresh_rows = {_row_key(r): r for r in fresh.get(section, [])}
        missing = set(base_rows) - set(fresh_rows)
        if missing:
            problems.append(f"{section}: fresh run no longer measures "
                            f"{sorted(missing)}")
        for key in sorted(set(base_rows) & set(fresh_rows)):
            base_row, fresh_row = base_rows[key], fresh_rows[key]
            lost_fields = set(base_row) - set(fresh_row)
            if lost_fields:
                problems.append(f"{section} {key}: row lost fields "
                                f"{sorted(lost_fields)}")
            if int(fresh_row.get("mismatches", 0)) != 0:
                problems.append(f"{section} {key}: served replies diverged "
                                f"from the offline policy "
                                f"({fresh_row['mismatches']} mismatches)")
            base_rps = float(base_row.get("throughput_rps", 0.0))
            now_rps = float(fresh_row.get("throughput_rps", 0.0))
            ratio = now_rps / base_rps if base_rps else float("inf")
            flag = "" if ratio >= min_ratio else "  <-- COLLAPSED"
            print(f"{key:<16} {'throughput_rps':<16} {base_rps:>12.1f} "
                  f"{now_rps:>12.1f} {ratio:>8.2f}{flag}")
            if ratio < min_ratio:
                problems.append(
                    f"{section} {key}: {now_rps:.0f} req/s is below "
                    f"{min_ratio:.0%} of the committed {base_rps:.0f} req/s")
            base_p50 = float(base_row.get("p50_ms", 0.0))
            now_p50 = float(fresh_row.get("p50_ms", 0.0))
            if base_p50 > 0.0 and now_p50 > 0.0:
                lat_ratio = base_p50 / now_p50   # >= min_ratio when healthy
                flag = "" if lat_ratio >= min_ratio else "  <-- COLLAPSED"
                print(f"{key:<16} {'p50_ms':<16} {base_p50:>12.3f} "
                      f"{now_p50:>12.3f} {lat_ratio:>8.2f}{flag}")
                if lat_ratio < min_ratio:
                    problems.append(
                        f"{section} {key}: p50 latency {now_p50:.2f} ms is "
                        f"over {1 / min_ratio:.0f}x the committed "
                        f"{base_p50:.2f} ms")

    if fresh.get("served_equals_offline") is not True:
        problems.append("served-equals-offline policy identity no longer "
                        "holds")
    return problems


def compare(fresh_path: str, baseline_path: str, min_ratio: float) -> int:
    fresh = json.loads(Path(fresh_path).read_text(encoding="utf-8"))
    serving = _is_serving(fresh)
    if baseline_path is None:
        baseline_path = str(BASELINE_SERVING if serving else BASELINE)
    baseline = json.loads(Path(baseline_path).read_text(encoding="utf-8"))

    problems = []
    missing_keys = set(baseline) - set(fresh)
    if missing_keys:
        problems.append(f"fresh document lost top-level keys: "
                        f"{sorted(missing_keys)}")
    if serving:
        problems += _compare_serving(fresh, baseline, min_ratio)
    else:
        problems += _compare_parallel(fresh, baseline, min_ratio)

    if problems:
        print("\nbench comparison FAILED:")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print(f"\nall rows within {min_ratio:.0%} tripwire of "
          f"{baseline_path}: OK")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh", help="bench JSON produced by this run")
    parser.add_argument("--baseline", default=None,
                        help="committed snapshot to diff against (default: "
                             "BENCH_serving.json for serving documents, "
                             "BENCH_parallel.json otherwise)")
    parser.add_argument("--min-ratio", type=float, default=0.2,
                        help="minimum fresh/baseline throughput ratio — and "
                             "maximum baseline/fresh p50 latency ratio "
                             "(default 0.2: a collapse tripwire, not a "
                             "noise-level gate)")
    args = parser.parse_args(argv)
    return compare(args.fresh, args.baseline, args.min_ratio)


if __name__ == "__main__":
    sys.exit(main())
