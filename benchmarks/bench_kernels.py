"""Micro-benchmarks of the computational kernels behind Figures 5 and 6.

These time the actual Python/NumPy implementations (predict, seq_train,
init_train, the DQN training step and the fixed-point core) on the host CPU.
They are the measured counterpart of the analytical latency models: the
*scaling* with the hidden-layer size (quadratic seq_train, linear predict)
should match the models even though the absolute numbers belong to the host
rather than the Cortex-A9.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.dqn import DQNAgent, DQNConfig
from repro.core.os_elm import OSELM
from repro.core.regularization import RegularizationConfig
from repro.fpga.core_sim import FixedPointOSELMCore

HIDDEN_SIZES = (32, 64, 128)


def _prepared_oselm(n_hidden: int, seed: int = 0) -> OSELM:
    rng = np.random.default_rng(seed)
    model = OSELM(5, n_hidden, 1, regularization=RegularizationConfig.l2(0.5), seed=seed)
    x0 = rng.uniform(-1, 1, size=(n_hidden, 5))
    t0 = rng.uniform(-1, 1, size=(n_hidden, 1))
    model.init_train(x0, t0)
    return model


@pytest.mark.parametrize("n_hidden", HIDDEN_SIZES)
@pytest.mark.benchmark(group="kernel-predict")
def test_kernel_predict(benchmark, n_hidden):
    model = _prepared_oselm(n_hidden)
    x = np.random.default_rng(1).uniform(-1, 1, size=(1, 5))
    result = benchmark(model.predict, x)
    assert result.shape == (1, 1)


@pytest.mark.parametrize("n_hidden", HIDDEN_SIZES)
@pytest.mark.benchmark(group="kernel-seq-train")
def test_kernel_seq_train(benchmark, n_hidden):
    model = _prepared_oselm(n_hidden)
    rng = np.random.default_rng(2)

    def one_update():
        model.seq_train_step(rng.uniform(-1, 1, size=5), float(rng.uniform(-1, 1)))

    benchmark(one_update)
    assert model.n_sequential_updates >= 1


@pytest.mark.parametrize("n_hidden", HIDDEN_SIZES)
@pytest.mark.benchmark(group="kernel-init-train")
def test_kernel_init_train(benchmark, n_hidden):
    rng = np.random.default_rng(3)
    x0 = rng.uniform(-1, 1, size=(n_hidden, 5))
    t0 = rng.uniform(-1, 1, size=(n_hidden, 1))

    def init():
        model = OSELM(5, n_hidden, 1, regularization=RegularizationConfig.l2(0.5), seed=0)
        model.init_train(x0, t0)
        return model

    model = benchmark(init)
    assert model.is_initialized


@pytest.mark.parametrize("n_hidden", (32, 64))
@pytest.mark.benchmark(group="kernel-dqn-train")
def test_kernel_dqn_train_step(benchmark, n_hidden):
    config = DQNConfig(n_states=4, n_actions=2, n_hidden=n_hidden, seed=0,
                       min_replay_size=32, batch_size=32)
    agent = DQNAgent(config)
    rng = np.random.default_rng(4)
    for _ in range(64):
        state = rng.normal(size=4)
        agent.replay.add(state, int(rng.integers(2)), float(rng.uniform(-1, 1)),
                         state + 0.01, False)

    benchmark(agent._train_step)
    assert agent.train_steps >= 1


@pytest.mark.parametrize("n_hidden", (32, 64))
@pytest.mark.benchmark(group="kernel-fixedpoint")
def test_kernel_fixed_point_seq_train(benchmark, n_hidden):
    """The functional cost of simulating the fixed-point core in Python.

    (On the real device this operation takes ~3*N^2 cycles at 125 MHz; here it
    measures the simulation overhead, which is why the FPGA experiments use the
    analytical latency model for time and the simulation only for values.)
    """
    rng = np.random.default_rng(5)
    reference = _prepared_oselm(n_hidden)
    core = FixedPointOSELMCore(5, n_hidden, 1)
    core.load_weights(reference.alpha, reference.bias)
    core.load_initial_state(reference.p_matrix, reference.beta)

    def one_update():
        core.seq_train(rng.uniform(-1, 1, size=5), rng.uniform(-1, 1, size=1))

    benchmark(one_update)
    assert core.seq_train_invocations >= 1
