"""Ablation A2 — the batch-size-1 fast path of Section 2.2.

The paper fixes the OS-ELM sequential batch size at 1 so that the inner
``(I + H P H^T)^{-1}`` becomes a scalar reciprocal and no SVD/QRD core is
needed on the FPGA.  This ablation checks (a) that the rank-1 fast path and
the general Woodbury path produce identical results, and (b) how the
per-sample update cost varies with the chunk size on the host.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.os_elm import OSELM
from repro.core.regularization import RegularizationConfig
from repro.experiments.reporting import format_table
from repro.fpga.timing import FPGACoreLatencyModel
from repro.linalg.incremental import sherman_morrison_update, woodbury_update

N_HIDDEN = 64


def _initialised_model(seed: int = 0) -> OSELM:
    rng = np.random.default_rng(seed)
    model = OSELM(5, N_HIDDEN, 1, regularization=RegularizationConfig.l2(0.5), seed=seed)
    model.init_train(rng.uniform(-1, 1, (N_HIDDEN, 5)), rng.uniform(-1, 1, (N_HIDDEN, 1)))
    return model


@pytest.mark.benchmark(group="ablation-batchsize")
def test_ablation_rank1_equals_woodbury(benchmark):
    rng = np.random.default_rng(0)
    h0 = rng.normal(size=(N_HIDDEN, 16))
    p = np.linalg.inv(h0.T @ h0 + 0.5 * np.eye(16))
    rows = rng.normal(size=(64, 16))

    def rank1_chain():
        out = p.copy()
        for row in rows:
            out = sherman_morrison_update(out, row)
        return out

    rank1 = benchmark(rank1_chain)
    general = p.copy()
    for row in rows:
        general = woodbury_update(general, row.reshape(1, -1))
    np.testing.assert_allclose(rank1, general, atol=1e-10)


@pytest.mark.parametrize("chunk_size", (1, 4, 16))
@pytest.mark.benchmark(group="ablation-batchsize")
def test_ablation_chunk_size_cost(benchmark, chunk_size):
    """Per-chunk update cost for different sequential batch sizes (same total data)."""
    model = _initialised_model()
    rng = np.random.default_rng(1)
    x = rng.uniform(-1, 1, size=(chunk_size, 5))
    t = rng.uniform(-1, 1, size=(chunk_size, 1))

    benchmark(model.partial_fit, x, t)
    assert model.n_sequential_updates >= 1


@pytest.mark.benchmark(group="ablation-batchsize", min_rounds=1, max_time=1.0)
def test_ablation_hardware_cost_of_general_inverse(benchmark):
    """Cycle-model comparison: the k=1 reciprocal path vs a hypothetical k x k solver.

    A general k x k inverse needs O(k^3) extra cycles plus an SVD/QRD core; the
    table below quantifies how quickly that overhead grows, which is the paper's
    justification for fixing k = 1 on the device.
    """
    model = FPGACoreLatencyModel()

    def table():
        rows = []
        for k in (1, 2, 4, 8, 16, 32):
            base = model.seq_train_cycles(N_HIDDEN)
            # A k x k Gauss-Jordan inverse on the single MAC unit costs ~k^3 extra
            # cycles, plus k times the per-row work of the rank-1 path.
            general = base * k + k**3
            rows.append({"chunk_size": k, "rank1_path_cycles": base * k,
                         "general_path_cycles": general,
                         "overhead_percent": 100.0 * (general - base * k) / (base * k)})
        return rows

    rows = benchmark.pedantic(table, rounds=1, iterations=1)
    print()
    print(format_table(rows, float_format=".2f",
                       title="Ablation A2: cost of abandoning the batch-size-1 fast path"))
    assert rows[0]["overhead_percent"] < 0.1       # k = 1: the reciprocal is essentially free
    assert rows[-1]["overhead_percent"] > rows[0]["overhead_percent"]
