"""Ablation A1 — the stabilisation techniques of Section 3.3.

Quantifies what each regularization component does to the quantities the
paper argues about:

* the L2 (ridge) term shrinks the norm of beta (Relation 13's constraint);
* the spectral normalization of alpha reduces the network's Lipschitz bound
  to sigma_max(beta);
* both together give the smallest Lipschitz bound.

The benchmark also reports the short-horizon training behaviour of each
variant on CartPole (our reproduction's honest outcome: the L2 variant learns,
while the alpha-normalized variants do not — see EXPERIMENTS.md).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.designs import design_spec
from repro.core.elm import ELM
from repro.core.regularization import RegularizationConfig
from repro.experiments.reporting import format_table

VARIANTS = ("OS-ELM", "OS-ELM-L2", "OS-ELM-Lipschitz", "OS-ELM-L2-Lipschitz")


def _fit_variant(regularization: RegularizationConfig, seed: int = 0):
    rng = np.random.default_rng(seed)
    x = rng.uniform(-1, 1, size=(256, 5))
    y = np.clip(rng.normal(size=(256, 1)), -1, 1)
    model = ELM(5, 64, 1, regularization=regularization, seed=seed)
    model.fit(x, y)
    return model


@pytest.mark.benchmark(group="ablation-regularization", min_rounds=1, max_time=1.0)
def test_ablation_regularization_effects(benchmark):
    def run():
        rows = []
        for name in VARIANTS:
            spec = design_spec(name)
            model = _fit_variant(spec.regularization)
            rows.append({
                "design": name,
                "alpha_spectral_norm": float(np.linalg.norm(model.alpha, 2)),
                "beta_frobenius_norm": model.beta_frobenius_norm(),
                "lipschitz_bound": model.lipschitz_upper_bound(),
            })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(rows, float_format=".3f",
                       title="Ablation A1: regularization effects on the trained network"))
    by_name = {row["design"]: row for row in rows}

    # Spectral normalization pins sigma_max(alpha) to 1 (Algorithm 1 lines 2-3).
    assert by_name["OS-ELM-Lipschitz"]["alpha_spectral_norm"] == pytest.approx(1.0, rel=1e-6)
    assert by_name["OS-ELM-L2-Lipschitz"]["alpha_spectral_norm"] == pytest.approx(1.0, rel=1e-6)
    assert by_name["OS-ELM"]["alpha_spectral_norm"] > 1.0

    # The L2 term shrinks beta relative to the unregularized solve.
    assert (by_name["OS-ELM-L2"]["beta_frobenius_norm"]
            < by_name["OS-ELM"]["beta_frobenius_norm"])

    # The combined variant has the smallest Lipschitz bound (Section 3.3's claim).
    bounds = {name: by_name[name]["lipschitz_bound"] for name in VARIANTS}
    assert bounds["OS-ELM-L2-Lipschitz"] == min(bounds.values())


@pytest.mark.benchmark(group="ablation-regularization", min_rounds=1, max_time=1.0)
def test_ablation_l2_delta_sweep(benchmark):
    """Sweeping the ridge strength delta trades training fit against the beta norm."""
    deltas = (0.0, 0.1, 0.5, 1.0, 5.0)

    def sweep():
        rows = []
        rng = np.random.default_rng(1)
        x = rng.uniform(-1, 1, size=(200, 5))
        y = np.clip(rng.normal(size=(200, 1)), -1, 1)
        for delta in deltas:
            reg = RegularizationConfig(l2_delta=delta, spectral_normalize_alpha=True)
            model = ELM(5, 64, 1, regularization=reg, seed=1).fit(x, y)
            train_error = float(np.mean((model.predict(x) - y) ** 2))
            rows.append({"delta": delta, "beta_norm": model.beta_frobenius_norm(),
                         "train_mse": train_error})
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(format_table(rows, float_format=".4f", title="Ablation A1b: delta sweep"))
    norms = [row["beta_norm"] for row in rows]
    errors = [row["train_mse"] for row in rows]
    assert norms == sorted(norms, reverse=True)     # larger delta -> smaller beta
    assert errors == sorted(errors)                 # ...at the price of training error
