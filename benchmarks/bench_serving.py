"""Benchmark: latency/throughput of the online policy-serving daemon.

Measures :class:`~repro.serving.PolicyServer` end to end over loopback TCP
on a trained OS-ELM policy:

1. **request/reply latency** — each client blocks on ``act()`` per
   observation, so every request pays the full round trip plus whatever the
   micro-batcher holds it back; reported as p50/p90/p99 across all clients,
   for every ``max_batch`` in {1, 8, 32} x client concurrency.  The batching
   tradeoff is visible directly: with fewer concurrent clients than
   ``max_batch`` the partial-batch timer (``max_wait_us``) sets the latency
   floor, while at ``max_batch=1`` every request dispatches alone;
2. **pipelined throughput** — one client streams all its observations with
   ``act_many`` before reading any reply, which is what lets the batcher
   actually fill batches; reported as requests/sec per ``max_batch``;
3. **byte-identity** — every served action is compared against the same
   observation evaluated offline with ``agent.act(state, explore=False)``;
   any mismatch fails the benchmark (exit 1), so the numbers can never come
   from a server that silently serves different actions.

Run directly (the suite's pytest collection ignores ``bench_*`` files)::

    PYTHONPATH=src python benchmarks/bench_serving.py --smoke

``--smoke`` keeps the whole run under half a minute; ``--json PATH`` dumps
every measured figure as one machine-readable document — the CI serving job
uploads it as the ``BENCH_serving.json`` artifact on every push, so the
serving-latency trajectory is tracked instead of lost in logs.
"""

from __future__ import annotations

import argparse
import json
import pickle
import sys
import threading
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import numpy as np

from repro import Trainer, TrainingConfig, make_design
from repro.experiments.reporting import format_table
from repro.serving import PolicyClient, PolicyServer

BATCH_SIZES = (1, 8, 32)


def _trained_policy(design: str, n_hidden: int, episodes: int, seed: int):
    agent = make_design(design, n_hidden=n_hidden, seed=seed)
    Trainer().fit(agent, config=TrainingConfig(max_episodes=episodes))
    return agent


def _probe_states(agent, n: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.uniform(-1.0, 1.0, size=(n, agent.config.n_states))


def _offline_greedy(agent, states: np.ndarray) -> np.ndarray:
    return np.array([agent.act(state, explore=False) for state in states],
                    dtype=np.int64)


def _served_clone(agent):
    """What the daemon actually hosts: the agent after a pickle round trip."""
    return pickle.loads(pickle.dumps(agent, protocol=pickle.HIGHEST_PROTOCOL))


def bench_latency(agent, design: str, offline: np.ndarray, states: np.ndarray,
                  *, max_batch: int, clients: int, max_wait_us: float) -> dict:
    """Per-request ``act()`` latency under ``clients`` concurrent clients."""
    latencies: list = []
    mismatches = [0]
    lock = threading.Lock()
    with PolicyServer({design: _served_clone(agent)}, max_batch=max_batch,
                      max_wait_us=max_wait_us) as server:
        host, port = server.address

        def drive() -> None:
            local = []
            wrong = 0
            with PolicyClient(host, port) as client:
                for state, expected in zip(states, offline):
                    start = time.perf_counter()
                    action = client.act(state)
                    local.append(time.perf_counter() - start)
                    wrong += int(action != expected)
            with lock:
                latencies.extend(local)
                mismatches[0] += wrong

        threads = [threading.Thread(target=drive) for _ in range(clients)]
        wall_start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - wall_start
        batch_summary = server.stats_snapshot()["metrics"]["histograms"][
            "serving.batch_size"]
    samples = np.asarray(latencies) * 1e3
    return {
        "max_batch": max_batch,
        "clients": clients,
        "requests": len(samples),
        "p50_ms": round(float(np.percentile(samples, 50)), 3),
        "p90_ms": round(float(np.percentile(samples, 90)), 3),
        "p99_ms": round(float(np.percentile(samples, 99)), 3),
        "throughput_rps": round(len(samples) / wall, 1),
        "mean_batch": round(float(batch_summary["mean"]), 2),
        "mismatches": mismatches[0],
    }


def bench_pipelined(agent, design: str, offline: np.ndarray,
                    states: np.ndarray, *, max_batch: int, rounds: int,
                    max_wait_us: float) -> dict:
    """``act_many`` streaming throughput: the batcher actually fills up."""
    mismatches = 0
    with PolicyServer({design: _served_clone(agent)}, max_batch=max_batch,
                      max_wait_us=max_wait_us) as server:
        with PolicyClient(*server.address) as client:
            start = time.perf_counter()
            for _ in range(rounds):
                served = client.act_many(states)
                mismatches += int(np.count_nonzero(served != offline))
            wall = time.perf_counter() - start
        batch_summary = server.stats_snapshot()["metrics"]["histograms"][
            "serving.batch_size"]
    requests = rounds * len(states)
    return {
        "max_batch": max_batch,
        "requests": requests,
        "throughput_rps": round(requests / wall, 1),
        "mean_batch": round(float(batch_summary["mean"]), 2),
        "mismatches": mismatches,
    }


def bench(args: argparse.Namespace) -> int:
    agent = _trained_policy(args.design, args.hidden, args.episodes,
                            args.root_seed)
    states = _probe_states(agent, args.requests, seed=args.root_seed)
    offline = _offline_greedy(agent, states)
    print(f"workload: {args.design} (n_hidden={args.hidden}, "
          f"{args.episodes} training episodes), {args.requests} observations "
          f"per client, max_wait_us={args.max_wait_us:g}\n")

    concurrency = (1, 4) if args.smoke else (1, 4, 8)
    latency_rows = [
        bench_latency(agent, args.design, offline, states,
                      max_batch=max_batch, clients=clients,
                      max_wait_us=args.max_wait_us)
        for max_batch in BATCH_SIZES
        for clients in concurrency
    ]
    print(format_table(latency_rows,
                       title="Serving latency: blocking act() per request"))

    rounds = 2 if args.smoke else 8
    pipelined_rows = [
        bench_pipelined(agent, args.design, offline, states,
                        max_batch=max_batch, rounds=rounds,
                        max_wait_us=args.max_wait_us)
        for max_batch in BATCH_SIZES
    ]
    print()
    print(format_table(pipelined_rows,
                       title="Serving throughput: pipelined act_many()"))

    total_mismatches = (sum(row["mismatches"] for row in latency_rows)
                        + sum(row["mismatches"] for row in pipelined_rows))
    identical = total_mismatches == 0
    print(f"\nserved actions == offline greedy evaluation: "
          f"{'OK' if identical else f'MISMATCH ({total_mismatches})'}")

    if args.json is not None:
        document = {
            "workload": {
                "design": args.design,
                "n_hidden": args.hidden,
                "episodes": args.episodes,
                "requests_per_client": args.requests,
                "max_wait_us": args.max_wait_us,
                "smoke": bool(args.smoke),
            },
            "latency": latency_rows,
            "pipelined": pipelined_rows,
            "served_equals_offline": identical,
        }
        path = Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")
        print(f"json: {path}")
    return 0 if identical else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small budget, finishes in seconds (CI smoke check)")
    parser.add_argument("--design", default="OS-ELM-L2",
                        help="design to train and serve")
    parser.add_argument("--hidden", type=int, default=32,
                        help="hidden-layer size")
    parser.add_argument("--episodes", type=int, default=None,
                        help="training episodes (default 5 smoke / 50 full)")
    parser.add_argument("--requests", type=int, default=None,
                        help="observations per client (default 50 smoke / 200 full)")
    parser.add_argument("--max-wait-us", type=float, default=1000.0,
                        help="micro-batcher partial-batch timer")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="also write every measured figure as a JSON "
                             "document (the CI BENCH_serving.json artifact)")
    parser.add_argument("--root-seed", type=int, default=2024)
    args = parser.parse_args(argv)
    if args.episodes is None:
        args.episodes = 5 if args.smoke else 50
    if args.requests is None:
        args.requests = 50 if args.smoke else 200
    return bench(args)


if __name__ == "__main__":
    raise SystemExit(main())
