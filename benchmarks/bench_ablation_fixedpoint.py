"""Ablation A3 — fixed-point precision of the FPGA core (Section 4.2).

The paper chooses a 32-bit Q20 format.  This ablation sweeps the number of
fractional bits and measures how far the fixed-point core's state (beta, P)
drifts from the float64 OS-ELM reference after a burst of sequential updates,
and verifies that Q20 keeps the drift negligible while much coarser formats
do not.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.os_elm import OSELM
from repro.core.regularization import RegularizationConfig
from repro.experiments.reporting import format_table
from repro.fixedpoint.qformat import QFormat
from repro.fpga.core_sim import FixedPointOSELMCore

N_HIDDEN = 32
N_UPDATES = 100


def _drift_for_format(fmt: QFormat, seed: int = 0) -> dict:
    rng = np.random.default_rng(seed)
    reference = OSELM(5, N_HIDDEN, 1, regularization=RegularizationConfig.l2(0.5), seed=seed)
    x0 = rng.uniform(-1, 1, size=(N_HIDDEN, 5))
    t0 = rng.uniform(-1, 1, size=(N_HIDDEN, 1))
    reference.init_train(x0, t0)
    core = FixedPointOSELMCore(5, N_HIDDEN, 1, qformat=fmt)
    core.load_weights(reference.alpha, reference.bias)
    core.load_initial_state(reference.p_matrix, reference.beta)
    prediction_error = 0.0
    for _ in range(N_UPDATES):
        x = rng.uniform(-1, 1, size=5)
        t = rng.uniform(-1, 1, size=1)
        reference.seq_train_step(x, float(t[0]))
        core.seq_train(x, t)
        probe = rng.uniform(-1, 1, size=5)
        prediction_error = max(
            prediction_error,
            abs(float(core.predict(probe)[0, 0])
                - float(reference.predict(probe.reshape(1, -1))[0, 0])),
        )
    divergence = core.compare_against(reference.beta, reference.p_matrix)
    return {
        "frac_bits": fmt.frac_bits,
        "beta_drift": divergence["beta_max_abs_error"],
        "p_drift": divergence["p_max_abs_error"],
        "prediction_drift": prediction_error,
    }


@pytest.mark.benchmark(group="ablation-fixedpoint", min_rounds=1, max_time=1.0)
def test_ablation_fractional_bit_sweep(benchmark):
    formats = [QFormat(32, frac) for frac in (8, 12, 16, 20, 24)]

    def sweep():
        return [_drift_for_format(fmt) for fmt in formats]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(format_table(rows, float_format=".2e",
                       title="Ablation A3: fixed-point drift vs float64 after "
                             f"{N_UPDATES} sequential updates"))
    by_bits = {row["frac_bits"]: row for row in rows}
    # The paper's Q20 keeps the learned model essentially identical to float.
    assert by_bits[20]["prediction_drift"] < 1e-3
    assert by_bits[20]["beta_drift"] < 1e-3
    # Coarser formats drift orders of magnitude more.
    assert by_bits[8]["prediction_drift"] > 10 * by_bits[20]["prediction_drift"]
    # Finer formats are never worse than Q20 by more than noise.
    assert by_bits[24]["prediction_drift"] <= by_bits[12]["prediction_drift"] + 1e-9


@pytest.mark.benchmark(group="ablation-fixedpoint", min_rounds=1, max_time=1.0)
def test_ablation_q20_core_prediction_accuracy(benchmark):
    """End-to-end check that the Q20 core predicts within a few LSBs of float."""
    result = benchmark.pedantic(_drift_for_format, args=(QFormat(32, 20),),
                                kwargs={"seed": 3}, rounds=1, iterations=1)
    assert result["prediction_drift"] < 1e-3
    assert result["p_drift"] < 1e-2
