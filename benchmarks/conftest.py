"""Shared configuration for the benchmark harness.

Each benchmark module regenerates one of the paper's tables or figures (see
DESIGN.md's per-experiment index).  The training-based benchmarks run with
CI-scale budgets so the whole suite finishes in minutes; the paper-scale
protocol is available through the experiment classes' ``paper_scale()``
constructors and the examples.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


def pytest_collection_modifyitems(config, items):
    """Keep benchmark ordering stable: tables first, then figures, then ablations."""
    order = {"table": 0, "fig": 1, "kernel": 2, "ablation": 3}

    def rank(item):
        name = item.module.__name__
        for key, value in order.items():
            if key in name:
                return value
        return 4

    items.sort(key=rank)


@pytest.fixture(scope="session")
def ci_hidden_sizes():
    """Hidden-layer sizes used by the CI-scale training benchmarks."""
    return (32,)


@pytest.fixture(scope="session")
def full_hidden_sizes():
    """The paper's hidden-layer sweep (used by the analytical benchmarks, which are cheap)."""
    return (32, 64, 128, 192)
