"""Benchmark E5 — Tables 1 and 2: the experimental platform and CartPole-v0 bounds.

These tables are specifications rather than measurements; the benchmark
verifies that the reproduction's platform model and environment expose exactly
the values the paper reports, and times a short environment rollout (the
simulation substrate every other experiment relies on).
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.envs import make
from repro.fpga.device import PYNQ_Z1


@pytest.mark.benchmark(group="table1-2")
def test_table1_platform_specification(benchmark):
    summary = benchmark(PYNQ_Z1.summary)
    print()
    for key, value in summary.items():
        print(f"  {key}: {value}")
    assert "Cortex-A9" in summary["CPU"]
    assert "650MHz" in summary["CPU"]
    assert summary["RAM"] == "512MB"
    assert "xc7z020" in summary["FPGA device"]


@pytest.mark.benchmark(group="table1-2")
def test_table2_cartpole_observation_bounds(benchmark):
    env = make("CartPole-v0", seed=0)

    def bounds():
        return env.observation_bounds_table

    table = benchmark(bounds)
    print()
    for name, (low, high) in table.items():
        print(f"  {name}: [{low:.3g}, {high:.3g}]")
    assert table["cart_position"] == (-4.8, 4.8)
    assert table["cart_velocity"] == (-math.inf, math.inf)
    assert table["pole_velocity_at_tip"] == (-math.inf, math.inf)
    # The paper's "41.8 degrees" corresponds to the 0.418-radian observation bound.
    assert env.observation_space.high[2] == pytest.approx(0.418, abs=0.01)


@pytest.mark.benchmark(group="table1-2")
def test_cartpole_rollout_throughput(benchmark):
    """Steps/second of the CartPole substrate (the floor under every training run)."""
    env = make("CartPole-v0", seed=0)
    rng = np.random.default_rng(0)

    def rollout():
        env.reset()
        steps = 0
        for _ in range(500):
            result = env.step(int(rng.integers(2)))
            steps += 1
            if result.done:
                env.reset()
        return steps

    steps = benchmark(rollout)
    assert steps == 500
