"""Benchmark E4 — Figure 6: per-operation breakdown of the FPGA design.

Trains the FPGA design at CI scale, projects its operation counts through the
platform model and prints the init_train / predict_init / predict_seq /
seq_train split across hidden-layer sizes — the bars of Figure 6.  Verifies
the paper's observation that seq_train dominates and that the total grows
with the hidden-layer size.
"""

from __future__ import annotations

import pytest

from repro.experiments.execution_time import ExecutionTimeExperiment, fpga_breakdown_rows
from repro.experiments.reporting import format_table
from repro.fpga.platform import PynqZ1Platform
from repro.rl.runner import TrainingConfig


def _run(hidden_sizes):
    experiment = ExecutionTimeExperiment(
        designs=("FPGA",),
        hidden_sizes=hidden_sizes,
        training=TrainingConfig(max_episodes=50, solved_threshold=100.0, solved_window=20),
        seed=21,
    )
    return experiment.run()


@pytest.mark.benchmark(group="figure6", min_rounds=1, max_time=1.0)
def test_figure6_fpga_breakdown_ci(benchmark):
    result = benchmark.pedantic(_run, args=((16, 32),), rounds=1, iterations=1)
    rows = fpga_breakdown_rows(result, hidden_sizes=(16, 32))
    print()
    print(format_table(rows, float_format=".4f",
                       title="Figure 6: FPGA design execution-time breakdown (modelled)"))
    assert len(rows) == 2
    # The total modelled time grows with the hidden-layer size.
    assert rows[1]["total_seconds"] > rows[0]["total_seconds"]
    for row in rows:
        assert row["seq_train"] >= 0.0
        assert row["init_train"] > 0.0


@pytest.mark.benchmark(group="figure6", min_rounds=1, max_time=1.0)
def test_figure6_seq_train_dominates_at_scale(benchmark, full_hidden_sizes):
    """At the paper's hidden sizes the sequential-training time dominates the
    FPGA design's modelled breakdown once training is underway."""
    platform = PynqZ1Platform()
    # A representative post-initialisation workload: 3 predictions per step,
    # one update every other step, over 20,000 steps.
    counts = {"predict_seq": 60_000, "seq_train": 10_000, "init_train": 1,
              "predict_init": 200}

    def project_all():
        return {n: platform.project_breakdown("FPGA", counts, n_hidden=n)
                for n in full_hidden_sizes}

    projections = benchmark(project_all)
    print()
    rows = []
    for n_hidden, breakdown in projections.items():
        rows.append({
            "n_hidden": n_hidden,
            "total_s": breakdown.total(),
            "seq_train_fraction": breakdown.fraction("seq_train"),
        })
    print(format_table(rows, float_format=".3f",
                       title="FPGA breakdown vs hidden size (fixed workload)"))
    for n_hidden, breakdown in projections.items():
        if n_hidden >= 128:
            assert breakdown.fraction("seq_train") > 0.5
    totals = [projections[n].total() for n in full_hidden_sizes]
    assert totals == sorted(totals)
