"""Benchmark E3 — Figure 5: execution time to complete the CartPole task.

Trains a representative design subset at CI scale, projects the recorded
per-operation counts through the PYNQ-Z1 latency models (650 MHz Cortex-A9
for software, 125 MHz programmable logic for the FPGA design) and prints the
Figure-5-style summary with speed-ups over DQN.  Checks the paper's headline
ordering: FPGA < OS-ELM software designs < DQN, with seq_train dominating the
OS-ELM designs and train_DQN dominating the baseline.
"""

from __future__ import annotations

import pytest

from repro.experiments.execution_time import (
    PAPER_SPEEDUPS,
    ExecutionTimeExperiment,
)
from repro.experiments.reporting import format_table
from repro.fpga.platform import PynqZ1Platform
from repro.rl.runner import TrainingConfig

CI_DESIGNS = ("OS-ELM-L2", "OS-ELM-L2-Lipschitz", "DQN", "FPGA")


def _run_experiment(n_hidden: int):
    experiment = ExecutionTimeExperiment(
        designs=CI_DESIGNS,
        hidden_sizes=(n_hidden,),
        training=TrainingConfig(max_episodes=80, solved_threshold=100.0, solved_window=25),
        seed=11,
    )
    return experiment.run()


@pytest.mark.benchmark(group="figure5", min_rounds=1, max_time=1.0)
def test_figure5_execution_time_32_units(benchmark, ci_hidden_sizes):
    n_hidden = ci_hidden_sizes[0]
    result = benchmark.pedantic(_run_experiment, args=(n_hidden,), rounds=1, iterations=1)
    print()
    print(result.render())

    dqn = result.get("DQN", n_hidden)
    fpga = result.get("FPGA", n_hidden)
    software = result.get("OS-ELM-L2-Lipschitz", n_hidden)

    # Figure 5's ordering on the modelled platform: the proposed designs complete
    # the same workload faster than DQN, and the FPGA design is the fastest.
    assert result.speedup_vs_dqn("OS-ELM-L2-Lipschitz", n_hidden) > 1.0
    assert result.speedup_vs_dqn("FPGA", n_hidden) > result.speedup_vs_dqn(
        "OS-ELM-L2-Lipschitz", n_hidden)
    assert fpga.modelled_total < software.modelled_total < dqn.modelled_total

    # Bottleneck attribution reported in Section 4.4.
    assert dqn.modelled.fraction("train_DQN") > 0.5
    assert (software.modelled.fraction("seq_train")
            + software.modelled.fraction("predict_seq")) > 0.5


@pytest.mark.benchmark(group="figure5", min_rounds=1, max_time=1.0)
def test_figure5_per_step_cost_sweep(benchmark, full_hidden_sizes):
    """Workload-normalised variant: modelled cost of 1,000 training steps per design.

    This removes the episode-count variance of the tiny CI runs and exposes the
    pure per-operation scaling with the hidden-layer size that drives Figure 5.
    """
    platform = PynqZ1Platform()
    # One "training step" of each design, per the algorithms' structure:
    # OS-ELM: 2 predictions for the greedy action + (with prob eps2) 2 bootstrap
    # predictions and one seq_train; DQN: 1 predict_1 + 2 predict_32 + 1 train step.
    step_counts = {
        "OS-ELM-L2-Lipschitz": {"predict_seq": 3, "seq_train": 0.5},
        "FPGA": {"predict_seq": 3, "seq_train": 0.5},
        "DQN": {"predict_1": 1, "predict_32": 2, "train_DQN": 1},
    }

    def sweep():
        rows = []
        for n_hidden in full_hidden_sizes:
            row = {"n_hidden": n_hidden}
            for design, counts in step_counts.items():
                scaled = {op: int(count * 1000) for op, count in counts.items()}
                row[design] = platform.project_breakdown(design, scaled,
                                                         n_hidden=n_hidden).total()
            rows.append(row)
        return rows

    rows = benchmark(sweep)
    print()
    print(format_table(rows, float_format=".3f",
                       title="Modelled seconds per 1,000 training steps (Figure 5 scaling)"))
    for row in rows:
        assert row["FPGA"] < row["OS-ELM-L2-Lipschitz"] < row["DQN"]
    # Cost grows with the hidden-layer size for every design (Section 4.4's observation).
    for design in ("OS-ELM-L2-Lipschitz", "FPGA", "DQN"):
        series = [row[design] for row in rows]
        assert series == sorted(series)


@pytest.mark.benchmark(group="figure5", min_rounds=1, max_time=1.0)
def test_figure5_speedup_factors_vs_paper(benchmark, full_hidden_sizes):
    """Paper-vs-model speed-up comparison at 64 hidden units (abstract's headline numbers).

    The modelled speed-ups are derived from per-step costs scaled by the episode
    counts the paper implies; we assert only the direction and rough magnitude
    (within an order of magnitude), since absolute times depend on the board.
    """
    platform = PynqZ1Platform()

    def speedups():
        out = {}
        for n_hidden in full_hidden_sizes:
            dqn = platform.project_breakdown(
                "DQN", {"predict_1": 1000, "predict_32": 2000, "train_DQN": 1000},
                n_hidden=n_hidden).total()
            oselm = platform.project_breakdown(
                "OS-ELM-L2-Lipschitz", {"predict_seq": 3000, "seq_train": 500},
                n_hidden=n_hidden).total()
            fpga = platform.project_breakdown(
                "FPGA", {"predict_seq": 3000, "seq_train": 500}, n_hidden=n_hidden).total()
            out[n_hidden] = {"OS-ELM-L2-Lipschitz": dqn / oselm, "FPGA": dqn / fpga}
        return out

    modelled = benchmark(speedups)
    print()
    for n_hidden, values in modelled.items():
        paper = PAPER_SPEEDUPS.get(n_hidden, {})
        print(f"  {n_hidden:>3} units: modelled OS-ELM-L2-Lipschitz x{values['OS-ELM-L2-Lipschitz']:.1f} "
              f"(paper x{paper.get('OS-ELM-L2-Lipschitz', float('nan')):.2f}), "
              f"modelled FPGA x{values['FPGA']:.1f} (paper x{paper.get('FPGA', float('nan')):.2f})")
    for n_hidden, values in modelled.items():
        assert values["FPGA"] > values["OS-ELM-L2-Lipschitz"] > 1.0
