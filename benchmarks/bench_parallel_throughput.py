"""Benchmark: aggregate env-steps/sec of the parallel rollout engine.

Measures, on identical multi-seed CartPole workloads:

1. the serial baseline — the plain ``train_agent`` loop over the sweep's
   trials, exactly what ``experiments/training_curve.py`` did before the
   ``repro.parallel`` subsystem;
2. ``SweepRunner(backend="vectorized")`` — lock-step batched training over
   the vectorized environment;
3. ``SweepRunner(backend="distributed")`` — the TCP broker + local worker
   fleet of :mod:`repro.distributed`;
4. (full mode) ``SweepRunner(backend="process")`` — process-pool fan-out,
   which only wins with more physical cores than trials.

It additionally measures the :class:`~repro.parallel.AsyncVectorEnv`
overlap win (double-buffered step/update pipeline vs the synchronous
subprocess loop under an identical synthetic agent-update load) and
cross-checks that ``SyncVectorEnv`` and ``SubprocVectorEnv`` produce
identical trajectories under identical seeds, so every speedup is a
throughput statement, not a semantics change.

Run directly (the suite's pytest collection ignores ``bench_*`` files)::

    PYTHONPATH=src python benchmarks/bench_parallel_throughput.py --smoke

``--smoke`` keeps the whole run well under a minute; the default budget
measures longer runs for stabler numbers.  ``--json PATH`` additionally
dumps every measured rate as one machine-readable document — the CI bench
job uploads it as the ``BENCH_parallel.json`` artifact on every push, so
the per-backend perf trajectory is tracked instead of lost in logs.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import numpy as np

from repro.experiments.reporting import format_table
from repro.parallel import (
    AsyncVectorEnv,
    EnvFactory,
    SubprocVectorEnv,
    SweepRunner,
    SweepSpec,
    SyncVectorEnv,
    pipelined_rollout,
)
from repro.rl.runner import TrainingConfig, train_agent


def verify_sync_subproc_identical(num_envs: int = 3, steps: int = 150,
                                  seed: int = 123) -> bool:
    """Drive Sync and Subproc vector envs with one action stream; compare."""
    env_fns = [EnvFactory("CartPole-v0", seed=seed + i) for i in range(num_envs)]
    sync_env = SyncVectorEnv(env_fns)
    subproc_env = SubprocVectorEnv(env_fns)
    try:
        obs_sync, _ = sync_env.reset()
        obs_sub, _ = subproc_env.reset()
        if not np.array_equal(obs_sync, obs_sub):
            return False
        rng = np.random.default_rng(seed)
        for _ in range(steps):
            actions = rng.integers(0, 2, size=num_envs)
            result_sync = sync_env.step(actions)
            result_sub = subproc_env.step(actions)
            if not (np.array_equal(result_sync.observations, result_sub.observations)
                    and np.array_equal(result_sync.terminated, result_sub.terminated)
                    and np.array_equal(result_sync.truncated, result_sub.truncated)):
                return False
        return True
    finally:
        subproc_env.close()
        sync_env.close()


def bench_subproc_batching(num_envs: int = 2, messages: int = 200,
                           batch_sizes=(1, 4), seed: int = 77) -> list:
    """Messages/sec and env-steps/sec of SubprocVectorEnv per steps_per_message.

    Each configuration drives the same number of pipe messages with a fixed
    action stream; with ``steps_per_message=k`` every message advances up to
    k env steps, so the round-trip cost amortizes and aggregate env-steps/sec
    should rise with k (the ROADMAP item this measures).
    """
    rows = []
    base_rate = None
    for k in batch_sizes:
        env_fns = [EnvFactory("CartPole-v0", seed=seed + i) for i in range(num_envs)]
        venv = SubprocVectorEnv(env_fns, steps_per_message=k)
        try:
            venv.reset(seed=seed)
            rng = np.random.default_rng(seed)
            env_steps = 0
            start = time.perf_counter()
            for _ in range(messages):
                actions = rng.integers(0, 2, size=num_envs)
                result = venv.step(actions)
                env_steps += sum(info.get("frames", 1) for info in result.infos)
            seconds = time.perf_counter() - start
        finally:
            venv.close()
        rate = env_steps / seconds
        if base_rate is None:
            base_rate = rate
        rows.append({
            "steps_per_message": k,
            "messages": messages,
            "env_steps": env_steps,
            "seconds": round(seconds, 3),
            "env_steps_per_sec": round(rate),
            "speedup": round(rate / base_rate, 2),
        })
    return rows


def bench_async_overlap(num_envs: int = 2, rounds: int = 150,
                        update_flops_dim: int = 96, seed: int = 55) -> list:
    """steps/sec of sync-vs-async subprocess stepping under an update load.

    Both paths drive the same number of env steps and perform one synthetic
    agent update (a ``dim x dim`` matmul) per round; the async path launches
    the next env step *before* running the update, so the workers integrate
    while the parent multiplies — the overlap the ROADMAP's async item asks
    for.  The reported speedup is bounded by
    ``min(step_time, update_time) / total_time``, grows with env cost, and —
    like every speedup in this file — is machine-dependent: on a single-core
    box the parent and workers serialize on the hardware and the ratio sits
    near 1.0, so it is reported, not asserted.
    """
    rng = np.random.default_rng(seed)
    weights = rng.standard_normal((update_flops_dim, update_flops_dim))

    def synthetic_update(*_ignored) -> None:
        nonlocal weights
        weights = np.tanh(weights @ weights) * 0.5

    rows = []
    sync_rate = None
    for mode in ("subproc-sync", "async-pipelined"):
        env_fns = [EnvFactory("CartPole-v0", seed=seed + i)
                   for i in range(num_envs)]
        if mode == "subproc-sync":
            venv = SubprocVectorEnv(env_fns)
        else:
            venv = AsyncVectorEnv(env_fns)
        try:
            action_rng = np.random.default_rng(seed)

            def policy(observations):
                return action_rng.integers(0, 2, size=len(observations))

            start = time.perf_counter()
            if mode == "subproc-sync":
                observations, _ = venv.reset(seed=seed)
                env_steps = 0
                for _ in range(rounds):
                    result = venv.step(policy(observations))
                    synthetic_update(observations, None, result)
                    observations = result.observations
                    env_steps += sum(info.get("frames", 1)
                                     for info in result.infos)
            else:
                stats = pipelined_rollout(venv, policy, rounds,
                                          update=synthetic_update, seed=seed)
                env_steps = int(stats["env_steps"])
            seconds = time.perf_counter() - start
        finally:
            venv.close()
        rate = env_steps / seconds
        if sync_rate is None:
            sync_rate = rate
        rows.append({
            "engine": mode,
            "env_steps": env_steps,
            "seconds": round(seconds, 3),
            "env_steps_per_sec": round(rate),
            "speedup": round(rate / sync_rate, 2),
        })
    return rows


def bench_autoscale_lockstep(seeds: int = 2, episodes: int = 6,
                             root_seed: int = 909):
    """Serial vs lock-step sweep throughput on the Autoscale-v0 systems env.

    The generic batched fast path (``AutoscaleEnv.batch_dynamics`` driven by
    ``SyncVectorEnv``) carries the vectorized backend here, so a regression
    that silently drops Autoscale-v0 off the fast path shows up as a rate
    collapse in the committed baseline.  Returns ``(rows, rates, identical)``
    where ``identical`` asserts the serial and lock-step curves match
    exactly — the bit-identity contract, not just a speed number.
    """
    training = TrainingConfig(env_id="Autoscale-v0", max_episodes=episodes,
                              max_steps_per_episode=60,
                              solved_threshold=10_000.0, stop_when_solved=False,
                              reward_shaping=False)
    spec = SweepSpec(designs=("OS-ELM-L2-Lipschitz",), n_seeds=seeds,
                     n_hidden=16, training=training, root_seed=root_seed)
    rows, rates, curves = [], {}, {}
    serial_rate = None
    for backend in ("serial", "vectorized"):
        start = time.perf_counter()
        sweep = SweepRunner(spec, backend=backend).run()
        seconds = time.perf_counter() - start
        rate = sweep.total_env_steps / seconds
        if serial_rate is None:
            serial_rate = rate
        key = "autoscale_lockstep" if backend == "vectorized" else "autoscale_serial"
        rates[key] = rate
        curves[backend] = [tuple(result.curve.steps)
                           for result in sweep.results_for()]
        rows.append({
            "engine": f"SweepRunner backend={backend}",
            "env_steps": sweep.total_env_steps,
            "seconds": round(seconds, 3),
            "steps_per_sec": round(rate),
            "speedup": round(rate / serial_rate, 2),
        })
    identical = curves["serial"] == curves["vectorized"]
    return rows, rates, identical


def bench(args: argparse.Namespace) -> int:
    training = TrainingConfig(max_episodes=args.episodes,
                              solved_threshold=10_000.0,   # fixed workload: never early-stop
                              stop_when_solved=False)
    spec = SweepSpec(designs=(args.design,), n_seeds=args.seeds,
                     n_hidden=args.hidden, training=training,
                     root_seed=args.root_seed)
    tasks = spec.tasks()

    print(f"workload: {args.seeds}-seed {args.design} (n_hidden={args.hidden}) x "
          f"{args.episodes} episodes on CartPole-v0\n")

    start = time.perf_counter()
    serial_steps = 0
    for task in tasks:
        result = train_agent(task.make_agent(), config=task.training,
                             n_hidden=task.n_hidden)
        serial_steps += int(result.curve.steps.sum())
    serial_seconds = time.perf_counter() - start
    serial_rate = serial_steps / serial_seconds

    rows = [{
        "engine": "serial train_agent loop",
        "env_steps": serial_steps,
        "seconds": round(serial_seconds, 3),
        "steps_per_sec": round(serial_rate),
        "speedup": 1.0,
    }]

    backends = (["vectorized", "distributed"] if args.smoke
                else ["vectorized", "distributed", "process"])
    backend_rates = {"serial": serial_rate}
    for backend in backends:
        start = time.perf_counter()
        kwargs = {"max_workers": args.workers} if backend == "distributed" else {}
        sweep = SweepRunner(spec, backend=backend, **kwargs).run()
        seconds = time.perf_counter() - start
        rate = sweep.total_env_steps / seconds
        backend_rates[backend] = rate
        rows.append({
            "engine": f"SweepRunner backend={backend}",
            "env_steps": sweep.total_env_steps,
            "seconds": round(seconds, 3),
            "steps_per_sec": round(rate),
            "speedup": round(rate / serial_rate, 2),
        })

    print(format_table(rows, title="Parallel rollout throughput"))

    batching_rows = bench_subproc_batching(
        messages=100 if args.smoke else 400)
    print()
    print(format_table(batching_rows,
                       title="SubprocVectorEnv: env steps batched per pipe message"))

    async_rows = bench_async_overlap(rounds=100 if args.smoke else 400)
    print()
    print(format_table(async_rows,
                       title="AsyncVectorEnv: step/update overlap vs sync subproc"))
    # Keyed distinctly from the sweep backends: the async number measures a
    # random-policy rollout under a synthetic update load, not a training
    # sweep, so it must not be read as like-for-like with the rows above.
    backend_rates["async_rollout"] = float(async_rows[-1]["env_steps_per_sec"])

    autoscale_rows, autoscale_rates, autoscale_identical = \
        bench_autoscale_lockstep(episodes=4 if args.smoke else 10)
    backend_rates.update(autoscale_rates)
    print()
    print(format_table(autoscale_rows,
                       title="Autoscale-v0 (systems env): serial vs lock-step sweep"))
    print(f"Autoscale-v0 serial == lock-step curves (seeded): "
          f"{'OK' if autoscale_identical else 'MISMATCH'}")

    identical = verify_sync_subproc_identical()
    print(f"\nSyncVectorEnv == SubprocVectorEnv trajectories (seeded): "
          f"{'OK' if identical else 'MISMATCH'}")

    vectorized_rate = backend_rates["vectorized"]
    speedup = vectorized_rate / serial_rate
    target = 3.0
    if speedup >= target:
        print(f"vectorized speedup {speedup:.2f}x >= {target}x target")
    else:
        print(f"WARNING: vectorized speedup {speedup:.2f}x below the {target}x target "
              f"(machine-dependent; rerun without other load)")

    if args.json is not None:
        document = {
            "workload": {
                "design": args.design,
                "seeds": args.seeds,
                "n_hidden": args.hidden,
                "episodes": args.episodes,
                "smoke": bool(args.smoke),
            },
            "steps_per_sec": {name: round(rate, 1)
                              for name, rate in sorted(backend_rates.items())},
            "subproc_batching": batching_rows,
            "async_overlap": async_rows,
            "autoscale_lockstep": autoscale_rows,
            "autoscale_serial_vectorized_identical": autoscale_identical,
            "sync_subproc_identical": identical,
        }
        path = Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")
        print(f"json: {path}")
    return 0 if identical and autoscale_identical else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small budget, finishes in seconds (CI smoke check)")
    parser.add_argument("--seeds", type=int, default=4, help="trials in the sweep")
    parser.add_argument("--design", default="OS-ELM-L2-Lipschitz",
                        help="design name for every trial")
    parser.add_argument("--hidden", type=int, default=32, help="hidden-layer size")
    parser.add_argument("--episodes", type=int, default=None,
                        help="episodes per trial (default 100 smoke / 300 full)")
    parser.add_argument("--workers", type=int, default=2,
                        help="local worker processes for the distributed backend")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="also write all measured rates as a JSON document "
                             "(the CI BENCH_parallel.json artifact)")
    parser.add_argument("--root-seed", type=int, default=2024)
    args = parser.parse_args(argv)
    if args.episodes is None:
        args.episodes = 100 if args.smoke else 300
    return bench(args)


if __name__ == "__main__":
    raise SystemExit(main())
