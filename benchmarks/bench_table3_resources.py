"""Benchmark E1 — Table 3: FPGA resource utilization of the OS-ELM Q-Network core.

Regenerates the BRAM / DSP / FF / LUT utilization sweep over 32–256 hidden
units on the xc7z020 and checks the qualitative agreement with the paper
(quadratic BRAM growth, constant DSP, 192 fits, 256 does not).  The benchmark
measurement itself times the area-model sweep.
"""

from __future__ import annotations

import pytest

from repro.experiments.resource_table import (
    compare_with_paper,
    render_table3,
    resource_table,
)
from repro.fpga.resources import TABLE3_PAPER_VALUES, OSELMCoreResourceModel


def _run_sweep():
    return resource_table(hidden_sizes=(32, 64, 128, 192, 256))


@pytest.mark.benchmark(group="table3")
def test_table3_resource_utilization(benchmark):
    report = benchmark(_run_sweep)
    print()
    print(render_table3(report))

    by_units = {row.n_hidden: row for row in report.rows}
    # The headline qualitative results of Table 3.
    assert by_units[192].fits, "192 hidden units must fit the xc7z020"
    assert not by_units[256].fits, "256 hidden units must exceed the BRAM capacity"
    for n_hidden, paper in TABLE3_PAPER_VALUES.items():
        if paper is None:
            continue
        modelled = by_units[n_hidden].utilization_percent
        assert modelled["BRAM"] == pytest.approx(paper["BRAM"], rel=0.15)
        assert modelled["DSP"] == pytest.approx(paper["DSP"], abs=0.1)


@pytest.mark.benchmark(group="table3")
def test_table3_paper_comparison_rows(benchmark):
    rows = benchmark(compare_with_paper)
    bram_errors = [row["relative_error"] for row in rows if row.get("resource") == "BRAM"]
    assert max(bram_errors) <= 0.15
    print()
    print(f"Table 3 comparison: {len(rows)} quantities, "
          f"max BRAM relative error {max(bram_errors):.3f}")


@pytest.mark.benchmark(group="table3")
def test_table3_max_fitting_design(benchmark):
    model = OSELMCoreResourceModel()
    largest = benchmark(model.max_hidden_units)
    assert 192 <= largest < 256
    print(f"\nLargest hidden-layer size that fits the xc7z020: {largest}")
