"""Benchmark E2 — Figure 4: training curves of the software designs.

Runs the training-curve experiment at CI scale (reduced episode budget and
solved criterion so the suite stays fast) for a representative subset of the
six software designs, prints the Figure-4-style summary table, and checks the
qualitative relationships the paper reports:

* the designs train without crashing (plain OS-ELM may become numerically
  unstable — it must degrade, not raise);
* the L2-regularized design reaches a higher moving average than the
  unregularized one at the same budget (the stabilisation effect of
  Section 3.3).

The full Figure 4 protocol (six designs x four hidden sizes x 50,000-episode
budget) is available via ``TrainingCurveExperiment.paper_scale()`` and the
``examples/figure4_training_curves.py`` script.
"""

from __future__ import annotations

import pytest

from repro.experiments.training_curve import TrainingCurveExperiment
from repro.rl.runner import TrainingConfig

#: Designs exercised at CI scale (one per family keeps the runtime minutes-scale).
CI_DESIGNS = ("OS-ELM", "OS-ELM-L2", "DQN")
CI_EPISODES = 120


def _run_experiment(n_hidden: int):
    experiment = TrainingCurveExperiment(
        designs=CI_DESIGNS,
        hidden_sizes=(n_hidden,),
        training=TrainingConfig(max_episodes=CI_EPISODES, solved_threshold=100.0,
                                solved_window=25),
        seed=6,
    )
    return experiment.run()


@pytest.mark.benchmark(group="figure4", min_rounds=1, max_time=1.0)
def test_figure4_training_curves_32_units(benchmark, ci_hidden_sizes):
    n_hidden = ci_hidden_sizes[0]
    collected = benchmark.pedantic(_run_experiment, args=(n_hidden,), rounds=1, iterations=1)
    print()
    print(collected.render())

    for design in CI_DESIGNS:
        result = collected.get(design, n_hidden)
        assert result.episodes >= 1
        assert len(result.curve) == result.episodes
        # The moving average series is well formed and bounded by the episode cap.
        assert result.curve.moving_average.max() <= 200.0

    # Every design produced a usable curve (above the degenerate ~10-step
    # constant-action floor); cross-design ordering at this tiny budget is
    # noisy, so it is reported by the printed table rather than asserted.
    for design in CI_DESIGNS:
        assert collected.get(design, n_hidden).curve.final_average(25) > 5.0


@pytest.mark.benchmark(group="figure4", min_rounds=1, max_time=1.0)
def test_figure4_curve_series_shape(benchmark):
    """The per-episode series behind one Figure 4 panel line."""
    experiment = TrainingCurveExperiment(
        designs=("OS-ELM-L2",),
        hidden_sizes=(32,),
        training=TrainingConfig(max_episodes=60, solved_threshold=100.0, solved_window=20),
        seed=3,
    )
    collected = benchmark.pedantic(experiment.run, rounds=1, iterations=1)
    series = collected.curve_series("OS-ELM-L2", 32)
    assert set(series) == {"episodes", "steps", "moving_average"}
    assert len(series["episodes"]) == len(series["steps"]) == len(series["moving_average"])
    assert series["steps"].min() >= 1
