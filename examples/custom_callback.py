"""Writing a custom Trainer callback.

The unified training API (``repro.training``) drives every design — ELM
family, DQN baseline, FPGA-simulated — through one canonical episode/step
loop, and callbacks are how you observe (or lightly steer) that loop
without forking it.  This example builds an early-stopping callback that
watches the 100-episode moving average plateau, attaches it next to the
built-in progress streamer, and shows that the same callback works
unchanged on the serial driver and on a lock-step batch.

Run it:

    python examples/custom_callback.py
"""

from __future__ import annotations

import sys

from repro.core.designs import make_design
from repro.training import (
    Callback,
    ProgressCallback,
    Trainer,
    TrainingConfig,
)


class PlateauLogger(Callback):
    """Flag trials whose moving average stopped improving.

    Demonstrates the full hook surface: per-run setup in ``on_train_start``,
    per-episode work in ``on_episode_end``, and a summary in
    ``on_train_end``.  (A real early-stopper would also shrink
    ``config.max_episodes``; callbacks observe rather than mutate the
    protocol, so stopping early is the budget's job.)
    """

    def __init__(self, patience: int = 20) -> None:
        self.patience = patience
        self.best: dict = {}
        self.since_improvement: dict = {}
        self.plateaued: set = set()

    def on_train_start(self, run) -> None:
        for trial in run.trials:
            self.best[trial.index] = float("-inf")
            self.since_improvement[trial.index] = 0

    def on_episode_end(self, trial, record) -> None:
        if record.moving_average > self.best[trial.index]:
            self.best[trial.index] = record.moving_average
            self.since_improvement[trial.index] = 0
        else:
            self.since_improvement[trial.index] += 1
            if self.since_improvement[trial.index] == self.patience:
                self.plateaued.add(trial.index)
                print(f"  [plateau] trial {trial.index} "
                      f"({trial.agent.name}) flat for {self.patience} episodes "
                      f"at avg {record.moving_average:.1f}")

    def on_train_end(self, run, results) -> None:
        flat = len(self.plateaued)
        print(f"  [plateau] {flat}/{len(results)} trials plateaued")


def main() -> int:
    config = TrainingConfig(max_episodes=80, seed=0)

    print("serial driver with a custom callback + progress streaming:")
    trainer = Trainer(callbacks=[
        PlateauLogger(patience=25),
        ProgressCallback(20, stream=sys.stdout),
    ])
    agent = make_design("OS-ELM-L2-Lipschitz", n_hidden=32, seed=0)
    result = trainer.fit(agent, config=config)
    print(f"  -> solved={result.solved} after {result.episodes} episodes\n")

    print("the same callback on a lock-step batch (DQN included):")
    agents = [make_design("OS-ELM-L2", n_hidden=32, seed=1),
              make_design("DQN", n_hidden=32, seed=2)]
    configs = [TrainingConfig(max_episodes=30, seed=1),
               TrainingConfig(max_episodes=30, seed=2)]
    results = Trainer(callbacks=[PlateauLogger(patience=25)]).fit_lockstep(
        agents, configs)     # auto strategy: generic (mixed designs)
    for res in results:
        print(f"  -> {res.design}: {res.episodes} episodes, "
              f"final avg {res.curve.final_average():.1f}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
