"""SIGKILL a journaled broker mid-sweep and recover it, end to end.

Demonstrates the 1.8 crash-safety layer on one machine:

1. a journaled :class:`~repro.distributed.SweepBroker` runs in a child
   process (:class:`~repro.chaos.BrokerHarness`) on a fixed port, with
   every queue transition fsync'd to a write-ahead journal before the
   worker's delivery is acknowledged;
2. two workers join through a seeded :class:`~repro.chaos.FaultPlan`
   that severs every connection after a handful of frames — each worker
   reconnects with the shared deterministic backoff
   (:class:`~repro.utils.retry.RetryPolicy`), re-HELLOs under its
   original id, and redelivers any result the cut stranded;
3. once the journal shows durable progress the broker is SIGKILLed (no
   flush, no goodbye), then restarted on the same journal and port: the
   replay restores every delivered task as done and requeues what was
   in flight, and the surviving workers reconnect on their own;
4. the recovered sweep is compared against a serial run of the same
   grid — a crash may cost wall time, never results, so the summary
   CSV is byte-identical.

The script exits non-zero if any check fails, so it doubles as a
deterministic driver for the recovery path (the CI ``chaos`` job runs
the same scenario against real ``repro worker`` processes).

Run with::

    PYTHONPATH=src python examples/chaos_sweep.py

Against a real sweep, the same protection is two CLI flags::

    repro run figure4 --backend distributed --workers 0 \
        --bind 0.0.0.0:5555 --journal sweep.journal
    repro worker --connect brokerhost:5555   # reconnects by default
"""

from __future__ import annotations

import sys
import tempfile
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.api import Budget, ExperimentSpec, run
from repro.chaos import BrokerHarness, FaultPlan, run_workers_through
from repro.distributed.journal import SweepJournal
from repro.distributed.worker import WorkerOptions
from repro.utils.retry import RetryError, RetryPolicy


def main() -> int:
    spec = ExperimentSpec(name="chaos-demo", designs=("OS-ELM-L2",),
                          hidden_sizes=(8,), n_seeds=6,
                          budget=Budget(max_episodes=5))
    print(f"grid: {len(spec.tasks())} trials\n")

    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        tmp_path = Path(tmp)
        reference = run(spec, backend="serial",
                        out=str(tmp_path / "ref-store"))
        reference_csv = reference.summary_csv()

        journal = tmp_path / "sweep.journal"
        plan = FaultPlan(drop_after_frames=4, seed=7, delay_seconds=0.02)
        policy = RetryPolicy(max_attempts=60, base_delay=0.05,
                             max_delay=0.5, deadline=15.0)
        harness = BrokerHarness(spec.tasks(), journal_path=journal,
                                store_root=tmp_path / "chaos-store")
        with harness:
            print(f"journaled broker up on {harness.address}; every worker "
                  f"connection will be severed after "
                  f"{plan.drop_after_frames} frames")
            workers = run_workers_through(
                harness, 2,
                make_options=lambda i: WorkerOptions(
                    worker_id=f"chaos-{i}", handle_signals=False,
                    reconnect=policy, idle_timeout=10.0,
                    heartbeat_interval=0.5, connect_factory=plan.connect))
            done = harness.wait_for_deliveries(1, timeout=120.0)
            print(f"journal shows {done} fsync'd deliveries -> SIGKILL")
            harness.kill()
            harness.start()
            print("broker restarted on the same journal and port")
            harness.wait_until_exit(timeout=180.0)
            for worker in workers:
                worker.join(timeout=60.0)
                if worker.error is not None and \
                        not isinstance(worker.error, RetryError):
                    raise worker.error

        replay = SweepJournal(journal).load()
        faults = plan.snapshot()
        print(f"\njournal: {replay.sessions} broker sessions, "
              f"{replay.delivered} deliveries, {replay.requeues} requeues")
        print(f"faults fired: {faults['connections_dropped']} dropped "
              f"connections across {faults['connections_established']} "
              f"established")
        assert replay.sessions >= 2, "broker was never restarted"
        assert faults["connections_dropped"] >= 1, "no fault ever fired"

        # cache_only raises if even one trial is missing from the store:
        # this one call is the zero-lost-tasks assertion.
        recovered = run(spec, backend="serial",
                        out=str(tmp_path / "chaos-store"),
                        cache_only=True)
        assert recovered.summary_csv() == reference_csv, \
            "recovered sweep diverged from the serial reference"
        print(f"\n{len(recovered.trials)} recovered trials byte-identical "
              f"to the serial backend: OK")
    return 0


if __name__ == "__main__":
    start = time.perf_counter()
    code = main()
    print(f"({time.perf_counter() - start:.1f}s)")
    sys.exit(code)
