"""A multi-seed sweep on the distributed worker fleet, with fault injection.

Demonstrates the ``backend="distributed"`` path end to end on one machine:
a :class:`~repro.distributed.SweepBroker` is started implicitly by
``SweepRunner``, a local fleet of worker processes pulls the grid over TCP,
one worker is killed mid-sweep, and the result still matches the serial
backend bit-for-bit — the broker requeues the dead worker's lease and the
survivors finish the grid.

Run with::

    PYTHONPATH=src python examples/distributed_sweep.py

For a real multi-host fleet, the same grid is served with::

    repro run figure4 --backend distributed --bind 0.0.0.0:5555 --workers 0
    # ...then, on each additional machine:
    repro worker --connect brokerhost:5555
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import numpy as np

from repro.distributed import SweepBroker, spawn_local_workers
from repro.parallel import SweepRunner, SweepSpec
from repro.rl.runner import TrainingConfig


def main() -> None:
    spec = SweepSpec(
        designs=("OS-ELM-L2-Lipschitz",),
        n_seeds=4,
        n_hidden=32,
        training=TrainingConfig(max_episodes=60),
        root_seed=2021,
    )

    # --- the one-liner: SweepRunner owns broker + fleet -------------------
    distributed = SweepRunner(spec, backend="distributed", max_workers=2).run()
    print(distributed.render())
    print(f"backends used: {distributed.backend_counts()}")

    # --- the same grid serially, to show the bit-for-bit contract ---------
    serial = SweepRunner(spec, backend="serial").run()
    for (_, serial_result), (_, dist_result) in zip(serial.entries,
                                                    distributed.entries):
        np.testing.assert_array_equal(serial_result.curve.steps,
                                      dist_result.curve.steps)
    print("distributed trials replay serial trials bit-for-bit: OK")

    # --- fault injection: kill a worker mid-sweep --------------------------
    tasks = spec.tasks()
    broker = SweepBroker(tasks, heartbeat_timeout=5.0)
    broker.start()
    host, port = broker.address
    workers = spawn_local_workers(host, port, 2)
    deadline = time.monotonic() + 30.0  # let the fleet connect and lease tasks
    while broker.active_connections < 2 and time.monotonic() < deadline:
        time.sleep(0.01)
    time.sleep(0.05)
    workers[0].terminate()              # one worker dies mid-trial...
    broker.join(timeout=120.0)          # ...the survivor absorbs the requeue
    results = broker.results()
    broker.close()
    for worker in workers:
        worker.join(timeout=5.0)
    for (_, serial_result), (dist_result, _) in zip(serial.entries, results):
        np.testing.assert_array_equal(serial_result.curve.steps,
                                      dist_result.curve.steps)
    print(f"worker killed mid-sweep: {broker.requeued_tasks} task(s) requeued, "
          f"results still identical")


if __name__ == "__main__":
    main()
