#!/usr/bin/env python
"""Figure 5 / Figure 6 / Table 3 reproduction: execution time and FPGA resources.

Trains the selected designs, projects their per-operation counts through the
PYNQ-Z1 latency models (650 MHz Cortex-A9 software, 125 MHz programmable
logic for the FPGA design), and prints:

* the Table 3 resource-utilization sweep,
* the Figure 5 summary (modelled completion time + speed-up over DQN),
* the Figure 6 per-operation breakdown of the FPGA design,
* the paper's reported numbers next to the modelled ones for reference.

Run (quick demo):
    python examples/figure5_execution_time.py

Closer to the paper (expect hours):
    python examples/figure5_execution_time.py --hidden 32 64 128 192 \
        --episodes 50000 --threshold 195
"""

from __future__ import annotations

import argparse

from repro.core.designs import DESIGN_NAMES
from repro.experiments.execution_time import (
    PAPER_EXECUTION_TIMES,
    PAPER_SPEEDUPS,
    ExecutionTimeExperiment,
    fpga_breakdown_rows,
)
from repro.experiments.reporting import format_table
from repro.experiments.resource_table import render_table3
from repro.rl.runner import TrainingConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--designs", nargs="+",
                        default=["OS-ELM-L2", "OS-ELM-L2-Lipschitz", "DQN", "FPGA"],
                        choices=DESIGN_NAMES)
    parser.add_argument("--hidden", nargs="+", type=int, default=[32])
    parser.add_argument("--episodes", type=int, default=150)
    parser.add_argument("--threshold", type=float, default=100.0)
    parser.add_argument("--window", type=int, default=30)
    parser.add_argument("--seed", type=int, default=11)
    args = parser.parse_args()

    print(render_table3())
    print()

    experiment = ExecutionTimeExperiment(
        designs=tuple(args.designs),
        hidden_sizes=tuple(args.hidden),
        training=TrainingConfig(max_episodes=args.episodes,
                                solved_threshold=args.threshold,
                                solved_window=args.window),
        seed=args.seed,
    )
    result = experiment.run()

    print(result.render())
    print()

    for n_hidden in args.hidden:
        for design in args.designs:
            rows = result.breakdown_rows(design, n_hidden)
            print(format_table(
                rows, float_format=".4f",
                title=f"Breakdown: {design} at {n_hidden} hidden units (modelled seconds)"))
            print()

    if "FPGA" in args.designs:
        print(format_table(fpga_breakdown_rows(result, hidden_sizes=args.hidden),
                           float_format=".4f",
                           title="Figure 6: FPGA design breakdown across hidden sizes"))
        print()

    reference_rows = []
    for n_hidden, times in PAPER_EXECUTION_TIMES.items():
        for design, seconds in times.items():
            reference_rows.append({
                "n_hidden": n_hidden,
                "design": design,
                "paper_seconds": seconds,
                "paper_speedup_vs_DQN": PAPER_SPEEDUPS.get(n_hidden, {}).get(design),
            })
    print(format_table(reference_rows,
                       title="Paper-reported completion times (Section 4.4, for reference)"))


if __name__ == "__main__":
    main()
