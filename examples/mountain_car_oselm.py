#!/usr/bin/env python
"""Future-work scenario (Section 5): OS-ELM Q-Network on another control task.

The paper evaluates only CartPole-v0 and lists "some other reinforcement
tasks" as future work.  This example runs the same OS-ELM Q-Network agent on
MountainCar-v0 (and optionally Acrobot-v1) using the identical API — the only
changes are the environment dimensions and a task-appropriate reward shaping
(MountainCar's raw -1-per-step reward already lies inside the clipping range,
so shaping is disabled).

Run:
    python examples/mountain_car_oselm.py [--env MountainCar-v0] [--episodes 300]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.core.agents import AgentConfig, OSELMQAgent
from repro.core.regularization import RegularizationConfig
from repro.envs import make as make_env
from repro.rl.runner import TrainingConfig, train_agent
from repro.utils.metrics import RunningStats


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--env", default="MountainCar-v0",
                        choices=["MountainCar-v0", "Acrobot-v1"])
    parser.add_argument("--episodes", type=int, default=300)
    parser.add_argument("--hidden", type=int, default=64)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    env = make_env(args.env, seed=args.seed)
    config = AgentConfig(
        n_states=env.n_observations,
        n_actions=env.n_actions,
        n_hidden=args.hidden,
        gamma=0.99,
        regularization=RegularizationConfig.l2(1.0),
        seed=args.seed,
    )
    agent = OSELMQAgent(config)
    agent.name = f"OS-ELM-L2 ({args.env})"

    training = TrainingConfig(
        env_id=args.env,
        max_episodes=args.episodes,
        reward_shaping=False,               # the native reward is already in [-1, 0]
        solved_threshold=90.0 if args.env == "Acrobot-v1" else 110.0,
        solved_window=50,
        seed=args.seed,
    )
    print(f"Training {agent.name} with {args.hidden} hidden units "
          f"for up to {args.episodes} episodes...")
    result = train_agent(agent, env, config=training)

    lengths = RunningStats()
    lengths.extend(record.steps for record in result.curve.records)
    print()
    print(f"episodes run:        {result.episodes}")
    print(f"episode length:      mean {lengths.mean:.1f}, best {lengths.min:.0f} "
          f"(shorter is better on {args.env})")
    print(f"seq_train updates:   {result.breakdown.counts.get('seq_train', 0)}")
    print(f"weight resets:       {result.weight_resets}")
    best_window = np.min([np.mean(result.curve.steps[max(0, i - 25):i + 1])
                          for i in range(len(result.curve))])
    print(f"best 25-episode average length: {best_window:.1f}")
    print()
    print("Note: with the paper's constant exploration and no annealing, classic-control")
    print("tasks with sparse rewards (MountainCar) generally need longer budgets or an")
    print("exploration schedule (see repro.rl.schedule) to reach the goal reliably;")
    print("this script demonstrates the API path rather than a tuned solution.")


if __name__ == "__main__":
    main()
