"""Serve a trained policy online, then hot-swap it mid-flight.

Demonstrates the ``repro.serving`` stack end to end in one process:

1. train an OS-ELM-L2 agent for a handful of episodes;
2. host it in a :class:`~repro.serving.PolicyServer` (a TCP daemon on the
   distributed backend's framing) and answer requests through a
   :class:`~repro.serving.PolicyClient` — served actions are asserted
   byte-identical to offline greedy evaluation, the subsystem's core
   contract;
3. train a *second* agent with a :class:`~repro.serving.WeightPushCallback`
   attached, which pushes the in-training weights into the live server
   every few episodes — the "learn online, serve online" loop — and assert
   the server ends up serving exactly the freshly trained policy;
4. read the server's ``STATS`` channel: request counters, batch occupancy,
   and p50/p90/p99 request latency.

Run with::

    PYTHONPATH=src python examples/serve_policy.py

Against a persistent artifact store the same loop is two shell commands::

    repro run figure4 --ci --save-policy --out artifacts
    repro serve figure4 --ci --store artifacts --bind 127.0.0.1:7272
"""

from __future__ import annotations

import pickle
import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import numpy as np

from repro import Trainer, TrainingConfig, make_design
from repro.serving import PolicyClient, PolicyServer, WeightPushCallback


def offline_greedy(agent, states):
    """The reference answers: each observation evaluated alone, offline."""
    return np.array([agent.act(state, explore=False) for state in states])


def main() -> None:
    config = TrainingConfig(max_episodes=10)

    # --- 1. train the policy to serve ------------------------------------
    agent = make_design("OS-ELM-L2", n_hidden=32, seed=7)
    result = Trainer().fit(agent, config=config)
    print(f"trained OS-ELM-L2: {result.episodes} episodes, "
          f"solved={result.solved}")

    # --- 2. serve it and verify byte-identity ----------------------------
    rng = np.random.default_rng(0)
    states = rng.uniform(-1.0, 1.0, size=(64, agent.config.n_states))
    # The server hosts a pickle round-tripped copy — exactly what loading
    # from `repro run --save-policy` artifacts produces.
    served_copy = pickle.loads(pickle.dumps(agent))
    with PolicyServer({"OS-ELM-L2": served_copy},
                      max_batch=8, max_wait_us=2000) as server:
        host, port = server.address
        print(f"serving at {host}:{port} "
              f"(max_batch=8, max_wait_us=2000)")
        with PolicyClient(host, port) as client:
            served = client.act_many(states)   # pipelined: batches fill up
        reference = offline_greedy(agent, states)
        assert np.array_equal(served, reference), "served != offline greedy"
        print(f"{len(states)} served actions byte-identical to offline "
              f"greedy evaluation")

        # --- 3. hot-swap from a live training run ------------------------
        pusher = WeightPushCallback(f"{host}:{port}", every=3, strict=True)
        fresh = make_design("OS-ELM-L2", n_hidden=32, seed=99)
        Trainer(callbacks=[pusher]).fit(fresh, config=config)
        pusher.close()
        print(f"training pushed weights {pusher.pushes} times "
              f"(every 3 episodes + once at the end)")

        with PolicyClient(host, port) as client:
            swapped = client.act_many(states)
            stats = client.stats()
        assert np.array_equal(swapped, offline_greedy(fresh, states)), \
            "post-swap serving does not match the new agent"
        print("post-swap served actions match the freshly trained agent")

        # --- 4. observability --------------------------------------------
        entry = stats["designs"]["OS-ELM-L2"]
        latency = stats["metrics"]["histograms"][
            "serving.request_latency_seconds"]
        batches = stats["metrics"]["histograms"]["serving.batch_size"]
        assert entry["generation"] == pusher.pushes
        print(f"stats: generation={entry['generation']}, "
              f"requests={entry['requests']}, "
              f"mean_batch={batches['mean']:.2f}, "
              f"latency p50={latency['p50'] * 1e3:.2f}ms "
              f"p99={latency['p99'] * 1e3:.2f}ms")


if __name__ == "__main__":
    main()
