"""Registering a user experiment with the unified API (MountainCar/Acrobot).

The built-in registry covers the paper's deliverables (``figure4``,
``figure5``/``table2``, ``table3``); this example shows the extension point:
declare your own :class:`~repro.api.ExperimentSpec`, register it under a
name, and run it through the same engine, backends and artifact store the
paper experiments use.

The scenario sweeps two OS-ELM designs over MountainCar-v0 and Acrobot-v1
(3-action, non-CartPole dynamics — the spec machinery picks up each env's
observation/action dimensions automatically).  CartPole's reward shaping is
disabled; the per-episode "steps" series then simply measures how quickly
each episode ends (lower is better on these two tasks, unlike CartPole).

Run with::

    PYTHONPATH=src python examples/custom_experiment.py

A second invocation completes from the artifact cache — delete
``artifacts/`` (or pass a different ``out=``) to retrain.  Registration is
per-process, so the registered *name* only resolves inside this script; to
rerun the experiment from the shell, use the spec JSON this script saves::

    PYTHONPATH=src python -m repro run artifacts/classic-control-oselm.spec.json
"""

from __future__ import annotations

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.api import Budget, ExperimentSpec, register_experiment, run
from repro.utils.serialization import save_json

#: Full-scale protocol: no CartPole reward shaping, no solve-based early
#: stop (on MountainCar/Acrobot shorter episodes are better, so the
#: CartPole-style "survive N steps" criterion is disabled).
PAPER_BUDGET = Budget(max_episodes=2_000, solved_threshold=1e9,
                      stop_when_solved=False, reward_shaping=False)

#: Seconds-scale variant: identical in every way but the episode budget.
CI_BUDGET = Budget(max_episodes=15, solved_threshold=1e9,
                   stop_when_solved=False, reward_shaping=False)

SPEC = ExperimentSpec(
    name="classic-control-oselm",
    kind="training_curve",
    designs=("OS-ELM-L2", "OS-ELM-L2-Lipschitz"),
    hidden_sizes=(32,),
    env_ids=("MountainCar-v0", "Acrobot-v1"),
    n_seeds=2,
    seed=123,
    budget=PAPER_BUDGET,
    description="OS-ELM designs on the other classic-control tasks",
)


def main() -> int:
    register_experiment(SPEC, SPEC.with_budget(CI_BUDGET))

    # The spec is plain data: persist it and `repro run <path>` reruns it.
    spec_path = save_json("artifacts/classic-control-oselm.spec.json",
                          SPEC.with_budget(CI_BUDGET).to_json())
    print(f"spec saved to {spec_path} (rerun via `python -m repro run {spec_path}`)\n")

    report = run("classic-control-oselm", scale="ci", backend="vectorized",
                 out="artifacts")
    print(report.render())
    print(f"\n{len(report.trials)} trials ({report.cached_count} from cache) "
          f"via backends {report.backend_counts()} "
          f"in {report.wall_time_seconds:.2f}s")
    for record in report.trials[:2]:
        curve = record.result.curve
        print(f"  {record.task.env_id} / {record.task.design} trial "
              f"{record.task.trial}: mean episode length "
              f"{float(curve.steps.mean()):.1f} steps")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
