"""Watch a live distributed sweep through the broker's STATS channel.

Demonstrates the 1.5 observability surface end to end on one machine:

1. a :class:`~repro.distributed.SweepBroker` serves a small task grid;
2. a local worker fleet pulls and trains the grid over TCP;
3. while the fleet works, an *observer* polls
   :func:`~repro.telemetry.fleet.fetch_fleet_stats` — the exact call behind
   ``repro fleet status --connect HOST:PORT`` — and renders each snapshot;
4. every snapshot is checked against the broker's reconciliation invariant
   ``queued + leased + done == total``, and the final snapshot must show
   the whole grid done.

The script exits non-zero if any of those checks fail, so CI runs it as a
deterministic driver for the fleet-status path.

Run with::

    PYTHONPATH=src python examples/fleet_status.py

Against a real sweep, the same information comes from::

    repro run figure4 --backend distributed --bind 0.0.0.0:5555 &
    repro fleet status --connect localhost:5555 --watch
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.distributed import SweepBroker, spawn_local_workers
from repro.parallel import SweepSpec
from repro.rl.runner import TrainingConfig
from repro.telemetry.fleet import fetch_fleet_stats, format_fleet_status


def check_reconciled(snapshot: dict) -> None:
    tasks = snapshot["tasks"]
    total = tasks["queued"] + tasks["leased"] + tasks["done"]
    assert total == tasks["total"], (
        f"snapshot does not reconcile: {tasks}")


def main() -> int:
    spec = SweepSpec(
        designs=("OS-ELM-L2",),
        n_seeds=4,
        n_hidden=16,
        training=TrainingConfig(max_episodes=30),
        root_seed=2021,
    )
    tasks = spec.tasks()

    with SweepBroker(tasks) as broker:
        host, port = broker.address
        print(f"broker serving {len(tasks)} tasks on {host}:{port}\n")
        workers = spawn_local_workers(host, port, 2)

        # The observer loop: what `repro fleet status --watch` does.
        snapshots = 0
        while not broker.join(timeout=0.5):
            snapshot = fetch_fleet_stats(host, port)
            check_reconciled(snapshot)
            snapshots += 1
            print(format_fleet_status(snapshot))
            print()

        final = fetch_fleet_stats(host, port)
        check_reconciled(final)
        print(format_fleet_status(final))
        assert final["tasks"]["done"] == len(tasks), "sweep did not finish"
        assert final["workers"], "no workers registered in the snapshot"

        results = broker.results()
        for process in workers:
            process.join(timeout=10.0)

    print(f"\n{len(results)} results collected; "
          f"{snapshots + 1} snapshots, all reconciled: OK")
    return 0


if __name__ == "__main__":
    start = time.perf_counter()
    code = main()
    print(f"({time.perf_counter() - start:.1f}s)")
    sys.exit(code)
