"""The systems env family: sweeping designs over the Autoscale-v0 workload.

``Autoscale-v0`` is a seeded queueing/autoscaling simulator — Poisson
request traffic with a diurnal sinusoid and Markov bursts, replicas with a
cold-start delay, an M/M/c-style latency law, and a reward that trades SLO
violations against fleet cost.  Episodes *terminate* on backlog overload,
so the "steps" series every training curve plots measures how long the
policy keeps the service alive.

The example shows the three pieces of the env-family API this scenario
exercises:

* the env registry's capability metadata (``spec("Autoscale-v0")``) — the
  experiment machinery sizes agents from it without instantiating the env;
* the built-in ``autoscale`` experiment (and its minutes-scale
  ``autoscale_ci`` variant, which shortens episodes through
  ``ExperimentSpec.env_overrides`` rather than a separate env id);
* the generic lock-step fast path — every vectorized trial reports
  ``backend_used="lockstep"`` and reproduces the serial curves exactly.

Run with::

    PYTHONPATH=src python examples/autoscale_sweep.py

A second invocation completes from the artifact cache.
"""

from __future__ import annotations

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.api import get_spec, run
from repro.envs import spec as env_spec


def main() -> int:
    # 1. Capability metadata: dimensions, family and the lock-step flag are
    # registry facts — nothing gets instantiated to answer these.
    meta = env_spec("Autoscale-v0")
    print(f"Autoscale-v0: family={meta.family!r}, "
          f"{meta.n_states} observation dims, {meta.n_actions} actions, "
          f"batch_dynamics={meta.supports_batch_dynamics}\n")

    # 2. The ci-scale spec shortens episodes per env via env_overrides
    # instead of forking the experiment.
    ci = get_spec("autoscale", scale="ci")
    print(f"autoscale_ci env_params: {ci.env_params('Autoscale-v0')} "
          f"(episode budget {ci.env_budget('Autoscale-v0').max_episodes})\n")

    # 3. Run it: the vectorized backend drives AutoscaleEnv.batch_dynamics
    # through SyncVectorEnv, bit-identically to the serial loop.
    report = run("autoscale", scale="ci", backend="vectorized",
                 out="artifacts")
    print(report.render())
    print(f"\n{len(report.trials)} trials ({report.cached_count} from cache) "
          f"via backends {report.backend_counts()} "
          f"in {report.wall_time_seconds:.2f}s")
    for record in report.trials:
        curve = record.result.curve
        print(f"  {record.task.design}: survived "
              f"{float(curve.steps.mean()):.1f} steps/episode on average "
              f"(backend_used={record.backend_used})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
