#!/usr/bin/env python
"""Figure 4 reproduction: training curves of the software designs.

Runs the training-curve experiment for a configurable set of designs and
hidden-layer sizes, prints the per-design outcome table and writes the raw
per-episode series (episode, steps, moving average) to CSV files so they can
be plotted exactly like the paper's Figure 4.

Run (quick demo, two designs, one hidden size):
    python examples/figure4_training_curves.py

Run something closer to the paper (expect hours):
    python examples/figure4_training_curves.py --designs ELM OS-ELM OS-ELM-L2 \
        OS-ELM-Lipschitz OS-ELM-L2-Lipschitz DQN --hidden 32 64 128 192 \
        --episodes 50000 --threshold 195
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.core.designs import SOFTWARE_DESIGNS
from repro.experiments.reporting import rows_to_csv
from repro.experiments.training_curve import TrainingCurveExperiment, stability_classification
from repro.rl.runner import TrainingConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--designs", nargs="+", default=["OS-ELM", "OS-ELM-L2", "DQN"],
                        choices=SOFTWARE_DESIGNS)
    parser.add_argument("--hidden", nargs="+", type=int, default=[32])
    parser.add_argument("--episodes", type=int, default=300)
    parser.add_argument("--threshold", type=float, default=120.0,
                        help="solved criterion on the 100-episode moving average "
                             "(the paper / Gym convention is 195)")
    parser.add_argument("--window", type=int, default=50)
    parser.add_argument("--seed", type=int, default=6)
    parser.add_argument("--output-dir", type=Path, default=Path("results/figure4"))
    args = parser.parse_args()

    experiment = TrainingCurveExperiment(
        designs=tuple(args.designs),
        hidden_sizes=tuple(args.hidden),
        training=TrainingConfig(max_episodes=args.episodes,
                                solved_threshold=args.threshold,
                                solved_window=args.window),
        seed=args.seed,
    )
    collected = experiment.run()

    print()
    print(collected.render())
    print()
    for (design, n_hidden), result in sorted(collected.results.items()):
        label = stability_classification(result)
        print(f"  {design:<22} N={n_hidden:<4} -> {label}")

    args.output_dir.mkdir(parents=True, exist_ok=True)
    for (design, n_hidden), result in collected.results.items():
        series = result.curve.as_dict()
        rows = [
            {"episode": int(series["episodes"][i]),
             "steps": float(series["steps"][i]),
             "moving_average": float(series["moving_average"][i])}
            for i in range(len(result.curve))
        ]
        path = args.output_dir / f"curve_{design}_{n_hidden}.csv"
        path.write_text(rows_to_csv(rows))
        print(f"wrote {path} ({len(rows)} episodes)")


if __name__ == "__main__":
    main()
