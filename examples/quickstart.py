#!/usr/bin/env python
"""Quickstart: train an OS-ELM Q-Network on CartPole-v0 and inspect the result.

This is the smallest end-to-end use of the library: build one of the paper's
designs with :func:`repro.make_design`, train it with :func:`repro.train_agent`
and look at the training curve, the per-operation time breakdown and the
greedy-policy evaluation.

Run:
    python examples/quickstart.py [--design OS-ELM-L2] [--episodes 400] [--hidden 64]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import DESIGN_NAMES, TrainingConfig, evaluate_agent, make_design, train_agent
from repro.experiments.reporting import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--design", default="OS-ELM-L2", choices=DESIGN_NAMES,
                        help="which of the paper's seven designs to train")
    parser.add_argument("--hidden", type=int, default=64,
                        help="hidden-layer size N-tilde (the paper sweeps 32-192)")
    parser.add_argument("--episodes", type=int, default=400,
                        help="episode budget (the paper allows up to 50,000)")
    parser.add_argument("--seed", type=int, default=6)
    args = parser.parse_args()

    print(f"Training design {args.design!r} with {args.hidden} hidden units "
          f"for up to {args.episodes} episodes on CartPole-v0...")
    agent = make_design(args.design, n_hidden=args.hidden, seed=args.seed)
    config = TrainingConfig(
        max_episodes=args.episodes,
        solved_threshold=100.0,       # relaxed criterion for a quick demo
        solved_window=30,
        seed=args.seed,
    )
    result = train_agent(agent, config=config)

    print()
    print(f"solved: {result.solved}   episodes run: {result.episodes}   "
          f"weight resets: {result.weight_resets}")
    print(f"final 100-episode average steps: {result.curve.final_average():.1f}")
    print(f"wall-clock training time: {result.wall_time_seconds:.1f}s")

    rows = [{"operation": op,
             "count": result.breakdown.counts.get(op, 0),
             "seconds": sec,
             "fraction": result.breakdown.fraction(op)}
            for op, sec in sorted(result.breakdown.seconds.items(), key=lambda kv: -kv[1])]
    print()
    print(format_table(rows, float_format=".4f",
                       title="Measured per-operation breakdown (host wall clock)"))

    greedy = evaluate_agent(agent, n_episodes=10, config=TrainingConfig(seed=args.seed + 1))
    print()
    print(f"greedy evaluation over 10 episodes: mean {np.mean(greedy):.1f} steps, "
          f"best {np.max(greedy)} steps")


if __name__ == "__main__":
    main()
