"""Run a bursty sweep under the elastic fleet autoscaler, end to end.

Demonstrates the 1.7 ``repro.fleet`` subsystem on one machine:

1. a :class:`~repro.distributed.SweepBroker` serves a grid shaped to
   force both scaling directions — a pile of quick trials (the backlog
   that triggers a scale-up) followed by a few deterministically long
   trials (``stop_when_solved=False``) whose tail leaves surplus workers
   idle past the grace period;
2. a :class:`~repro.fleet.FleetAutoscaler` polls the broker's STATS
   channel, spawns workers through its
   :class:`~repro.fleet.WorkerSupervisor` when the backlog crosses the
   high-water mark, and retires idle workers through the broker's
   negotiated ``DRAIN`` protocol — each retired worker finishes its
   in-flight lease, delivers the result, and exits on its own;
3. the final :class:`~repro.fleet.FleetReport` and broker counters are
   checked: at least one scale-up, at least one graceful drain, and the
   elastic-fleet contract ``drain_requeued_tasks == 0`` (a retired
   worker never costs a lease re-execution);
4. the collected results are compared against a serial run of the same
   grid — the autoscaler changes *when and where* trials run, never
   *what* runs, so the outcome is identical under any scaling schedule.

The script exits non-zero if any check fails, so CI can run it as a
deterministic driver for the elastic-fleet path.

Run with::

    PYTHONPATH=src python examples/elastic_sweep.py

Against a real sweep, the same loop attaches over the network::

    repro run figure4 --backend distributed --workers 0 --autoscale &
    # or, for a broker started elsewhere:
    repro fleet autoscale --connect HOST:PORT --min 1 --max 4 --watch
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.distributed import SweepBroker
from repro.fleet import AutoscaleConfig, FleetAutoscaler
from repro.parallel import SweepRunner, SweepSpec
from repro.rl.runner import TrainingConfig


def build_tasks():
    """A bursty grid: 12 quick trials, then 2 long deterministic ones."""
    quick = SweepSpec(
        designs=("OS-ELM-L2",),
        n_seeds=12,
        n_hidden=8,
        training=TrainingConfig(max_episodes=5),
        root_seed=2021,
    ).tasks()
    long_tail = SweepSpec(
        designs=("OS-ELM-L2",),
        n_seeds=2,
        n_hidden=8,
        training=TrainingConfig(max_episodes=2500, stop_when_solved=False),
        root_seed=77,
    ).tasks()
    return quick + long_tail


def main() -> int:
    tasks = build_tasks()
    print(f"grid: {len(tasks)} trials "
          f"({len(tasks) - 2} quick + 2 long tail)\n")

    config = AutoscaleConfig(min_workers=1, max_workers=3,
                             poll_interval=0.1, high_water=2.0,
                             low_water=0.5, idle_grace_seconds=0.3,
                             cooldown_seconds=0.2)
    with SweepBroker(tasks) as broker:
        host, port = broker.address
        print(f"broker serving on {host}:{port}; autoscaling "
              f"min={config.min_workers} max={config.max_workers}")
        autoscaler = FleetAutoscaler(host, port, config=config).start()
        try:
            assert broker.join(timeout=600.0), "sweep did not converge"
        finally:
            autoscaler.stop(retire_fleet=True)
        results = broker.results()
        drains_completed = broker.drains_completed
        drain_requeued = broker.drain_requeued_tasks
        requeued = broker.requeued_tasks

    report = autoscaler.report
    print(f"\n{report.summary()}")
    for event in report.events:
        workers = ",".join(event.workers)
        print(f"  t+{event.elapsed:6.2f}s {event.kind:<16} {workers:<24} "
              f"{event.reason}")

    assert report.scale_ups >= 1, "fleet never scaled up"
    assert drains_completed >= 1, "no worker was drained gracefully"
    assert drain_requeued == 0, \
        f"graceful drain lost {drain_requeued} lease(s)"
    assert requeued == 0, f"{requeued} lease(s) were requeued"
    assert len(results) == len(tasks), "incomplete sweep"

    # The elastic run must be indistinguishable from a serial one.
    serial = SweepRunner(tasks, backend="serial").run()
    for (task, serial_result), (elastic_result, _backend) in zip(
            serial.entries, results):
        assert serial_result.episodes == elastic_result.episodes, task.key()
        assert list(serial_result.curve.steps) \
            == list(elastic_result.curve.steps), task.key()
    print(f"\n{len(results)} elastic results identical to the serial "
          f"backend; {drains_completed} graceful drain(s), 0 lost leases: OK")
    return 0


if __name__ == "__main__":
    start = time.perf_counter()
    code = main()
    print(f"({time.perf_counter() - start:.1f}s)")
    sys.exit(code)
