"""Multi-seed design sweep through the parallel rollout engine.

Replaces the hand-rolled pattern of looping ``train_agent`` over designs and
trials: declare the grid once as a ``SweepSpec``, let ``SweepRunner`` derive
a reproducible, non-overlapping seed for every (design, env, trial) cell,
execute compatible trials in lock-step batches, and aggregate the streamed
results into the Figure 4-style cross-seed statistics.

Run with::

    PYTHONPATH=src python examples/parallel_sweep.py
"""

from __future__ import annotations

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.parallel import SweepRunner, SweepSpec
from repro.rl.runner import TrainingConfig


def main() -> None:
    # 3 designs x 4 seeds on CartPole-v0 with a minutes-scale budget.  The
    # paper-scale protocol is the same spec with the 50,000-episode config.
    spec = SweepSpec(
        designs=("ELM", "OS-ELM-L2", "OS-ELM-L2-Lipschitz"),
        env_ids=("CartPole-v0",),
        n_seeds=4,
        n_hidden=32,
        training=TrainingConfig(max_episodes=250, solved_threshold=60.0,
                                solved_window=20),
        root_seed=1234,
    )
    runner = SweepRunner(spec, backend="auto")

    def on_result(task, result):
        status = (f"solved @ {result.episodes_to_solve}" if result.solved
                  else f"not solved in {result.episodes}")
        print(f"  [{task.design:>20s} trial {task.trial}] {status} "
              f"(final avg {result.curve.final_average():.1f} steps)")

    print(f"running {len(spec.tasks())} trials on backend={runner.backend} ...")
    sweep = runner.run(callback=on_result)

    print()
    print(sweep.render())
    print(f"\ntotal env steps: {sweep.total_env_steps}, "
          f"wall time: {sweep.wall_time_seconds:.2f}s")

    # Cross-seed mean curve of the strongest design (the Figure 4 averaging).
    curve = sweep.aggregate_curve("OS-ELM-L2-Lipschitz", "CartPole-v0")
    tail = slice(max(0, curve["episodes"].size - 5), None)
    print("\nOS-ELM-L2-Lipschitz mean curve, last episodes:")
    for episode, mean, std in zip(curve["episodes"][tail],
                                  curve["mean_steps"][tail],
                                  curve["std_steps"][tail]):
        print(f"  episode {episode:4d}: {mean:6.1f} +- {std:5.1f} steps")


if __name__ == "__main__":
    main()
