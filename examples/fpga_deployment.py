#!/usr/bin/env python
"""FPGA deployment walk-through: resources, fixed-point behaviour and latency.

Mirrors what a user targeting a PYNQ-Z1 would do before synthesising the
OS-ELM Q-Network core:

1. check that the chosen hidden-layer size fits the xc7z020 (Table 3),
2. run the bit-accurate 32-bit Q20 core next to the float reference and
   measure the quantization drift,
3. look at the cycle/latency model of predict and seq_train at 125 MHz and
   the modelled speed-up over the 650 MHz Cortex-A9.

Run:
    python examples/fpga_deployment.py [--hidden 64]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.core.regularization import RegularizationConfig
from repro.experiments.reporting import format_table
from repro.fpga.accelerator import FPGAAcceleratedOSELM
from repro.fpga.device import PYNQ_Z1, XC7Z020
from repro.fpga.resources import OSELMCoreResourceModel
from repro.fpga.timing import CortexA9LatencyModel, FPGACoreLatencyModel
from repro.utils.exceptions import ResourceExhaustedError


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--hidden", type=int, default=64)
    parser.add_argument("--updates", type=int, default=300,
                        help="sequential updates to run through the fixed-point core")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    print("Target platform (the paper's Table 1):")
    for key, value in PYNQ_Z1.summary().items():
        print(f"  {key}: {value}")
    print()

    # 1. Resource feasibility -------------------------------------------------
    model = OSELMCoreResourceModel()
    print("Resource check on", XC7Z020.name)
    for n_hidden in (32, 64, 128, 192, 256, args.hidden):
        try:
            model.check_fit(n_hidden, XC7Z020)
            util = model.utilization(n_hidden).utilization_percent
            print(f"  N={n_hidden:<4} fits  "
                  + "  ".join(f"{k}={v:5.2f}%" for k, v in util.items()))
        except ResourceExhaustedError as exc:
            print(f"  N={n_hidden:<4} DOES NOT FIT ({exc.resource}: needs {exc.required:.0f}, "
                  f"device has {exc.available:.0f})")
    print(f"  largest fitting design: {model.max_hidden_units()} hidden units")
    print()

    # 2. Fixed-point core vs an independent float reference --------------------
    from repro.core.os_elm import OSELM

    rng = np.random.default_rng(args.seed)
    accelerated = FPGAAcceleratedOSELM(
        5, args.hidden, 1,
        regularization=RegularizationConfig.l2_lipschitz(0.5),
        seed=args.seed,
    )
    reference = OSELM(5, args.hidden, 1,
                      regularization=RegularizationConfig.l2_lipschitz(0.5), seed=args.seed)
    x0 = rng.uniform(-1, 1, size=(args.hidden, 5))
    t0 = np.clip(rng.normal(size=(args.hidden, 1)), -1, 1)
    accelerated.init_train(x0, t0)
    reference.init_train(x0, t0)
    for _ in range(args.updates):
        x = rng.uniform(-1, 1, size=5)
        target = float(rng.uniform(-1, 1))
        accelerated.seq_train_step(x, target)
        reference.seq_train_step(x, target)
    drift = accelerated.core.compare_against(reference.beta, reference.p_matrix)
    print(f"After {args.updates} sequential updates on the 32-bit Q20 core "
          f"(vs an independent float64 OS-ELM):")
    print(f"  max |beta_fixed - beta_float| = {drift['beta_max_abs_error']:.2e}")
    print(f"  max |P_fixed - P_float|       = {drift['p_max_abs_error']:.2e}")
    print()

    # 3. Latency model ---------------------------------------------------------
    pl = FPGACoreLatencyModel()
    cpu = CortexA9LatencyModel()
    rows = []
    for n_hidden in (32, 64, 128, 192):
        rows.append({
            "n_hidden": n_hidden,
            "predict_cycles": pl.predict_cycles(5, n_hidden),
            "seq_train_cycles": pl.seq_train_cycles(n_hidden),
            "seq_train_pl_us": pl.seq_train(n_hidden).seconds * 1e6,
            "seq_train_cpu_us": cpu.seq_train(n_hidden).seconds * 1e6,
            "speedup": cpu.seq_train(n_hidden).seconds / pl.seq_train(n_hidden).seconds,
        })
    print(format_table(rows, float_format=".1f",
                       title="Modelled per-operation latency: 125 MHz PL vs 650 MHz Cortex-A9"))
    print()
    print(f"Modelled seq_train speed-up at N={args.hidden}: "
          f"{accelerated.modelled_speedup_vs_cpu():.1f}x")


if __name__ == "__main__":
    main()
